"""Experiment harnesses on tiny instances.

These check the harness plumbing and the headline qualitative claims on
scaled-down problems; the full quick-mode runs live in benchmarks/.
"""

import pytest

from repro.experiments import fig4, fig5, fig6, fig7, fig8, fig9, tables
from repro.experiments.base import ExperimentResult
from repro.experiments.fig9 import ranking_agreement
from repro.experiments.runner import EXPERIMENTS, run_experiment

SMALL = (1, 2, 4)


def test_registry_complete():
    for name in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9"):
        assert name in EXPERIMENTS
    assert any(name.startswith("ablation") for name in EXPERIMENTS)
    with pytest.raises(ValueError):
        run_experiment("fig99")


def test_fig4_small():
    res = fig4.run(quick=True, benchmarks=("embar", "grid"), processor_counts=SMALL)
    assert set(res.series) == {"embar", "grid"}
    assert res.series["embar"][1] == 1.0
    assert res.series["embar"][4] > res.series["embar"][1]
    text = res.format()
    assert "fig4" in text and "speedup" in text


def test_fig5_small():
    res = fig5.run(quick=True, processor_counts=SMALL)
    assert len(res.series) == 5
    top = max(SMALL)
    base = res.series["base (compiler sizes)"][top]
    ideal = res.series["ideal (no comm/sync)"][top]
    actual = res.series["actual sizes (2/128 B)"][top]
    # The §4.1 story: ideal fastest; actual sizes dramatically better
    # than compiler-reported whole elements.
    assert ideal < actual < base
    assert any("barriers" in n for n in res.notes)


def test_fig6_small():
    res = fig6.run(quick=True, benchmarks=("embar",), processor_counts=SMALL)
    t_slow = res.series["embar@x2.0"][1]
    t_base = res.series["embar@x1.0"][1]
    t_fast = res.series["embar@x0.5"][1]
    assert t_slow > t_base > t_fast
    # At P=1 there is no communication: the scaling is exactly linear.
    assert t_slow / t_fast == pytest.approx(4.0, rel=0.01)


def test_fig7_small():
    res = fig7.run(quick=True, processor_counts=SMALL)
    assert len(res.series) == 6
    assert all(len(s) == len(SMALL) for s in res.series.values())
    assert any("minimum execution time" in n for n in res.notes)


def test_fig8_small():
    res = fig8.run(quick=True, processor_counts=SMALL)
    assert "cyclic/interrupt" in res.series
    assert "grid/no-interrupt" in res.series
    assert res.notes


def test_fig9_tiny():
    res = fig9.run(
        quick=True,
        processor_counts=(4,),
        distributions=(("block", "block"), ("whole", "whole")),
    )
    assert "(block,block) pred" in res.series
    assert "(block,block) meas" in res.series
    assert res.notes


def test_ranking_agreement():
    a = {"x": 1.0, "y": 2.0, "z": 3.0}
    assert ranking_agreement(a, a) == 1.0
    rev = {"x": 3.0, "y": 2.0, "z": 1.0}
    assert ranking_agreement(a, rev) == 0.0
    with pytest.raises(ValueError):
        ranking_agreement(a, {"x": 1.0})


def test_tables():
    assert tables.table1_matches_paper()
    assert tables.table3_matches_paper()
    t1, t2, t3 = tables.table1(), tables.table2(), tables.table3()
    assert "EntryTime".lower() in t1.lower().replace("_", "")
    assert "embar" in t2
    assert "0.118" in t3 and "0.41" in t3


def test_experiment_result_formatting():
    res = ExperimentResult(
        name="x", title="T", series={"s": {1: 1.0, 2: 2.0}}, notes=["n1"]
    )
    out = res.format()
    assert "T" in out and "n1" in out
    assert res.xs() == [1, 2]


def test_experiment_result_csv():
    res = ExperimentResult(
        name="x",
        title="T",
        series={"a": {1: 1.5, 2: 2.5}, "b": {2: 9.0}},
    )
    lines = res.to_csv().splitlines()
    assert lines[0] == "x,a,b"
    assert lines[1] == "1,1.5,"
    assert lines[2] == "2,2.5,9.0"
