"""The validation-suite and multithread experiments (tiny instances)."""

from repro.experiments import multithread_study, validation
from repro.experiments.runner import EXPERIMENTS


def test_registered():
    assert "validation-suite" in EXPERIMENTS
    assert "ablation-multithread" in EXPERIMENTS


def test_validation_suite_tiny():
    res = validation.run(
        quick=True, processor_counts=(4,), benchmarks=("cyclic",)
    )
    assert "cyclic pred" in res.series
    assert "cyclic meas" in res.series
    pred = res.series["cyclic pred"][4]
    meas = res.series["cyclic meas"][4]
    # Same regime (the paper's "not excessive" criterion, loosely).
    assert 0.2 < pred / meas < 5.0
    assert any("ratio" in n for n in res.notes)


def test_multithread_study_tiny():
    res = multithread_study.run(
        quick=True, n_threads=8, processor_counts=(1, 2, 4, 8)
    )
    blk, cyc = res.series["block"], res.series["cyclic"]
    assert set(blk) == {1, 2, 4, 8}
    # m=1 is identical under both schemes (everything is local).
    assert blk[1] == cyc[1]
    assert any("local" in n for n in res.notes)
