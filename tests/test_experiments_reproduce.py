"""The one-shot reproduction artefact writer."""

import pytest

from repro.experiments import reproduce as reproduce_mod
from repro.experiments.reproduce import reproduce


def test_unknown_experiment_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown"):
        reproduce(tmp_path, experiments=["fig99"])


def test_writes_reports_and_index(tmp_path, monkeypatch):
    # Shrink to two cheap experiments.
    def tiny_ok(quick=True, **kw):
        from repro.experiments.base import ExperimentResult

        return ExperimentResult(
            name="tiny", title="T", series={"s": {1: 1.0, 2: 2.0}}
        )

    def tiny_boom(quick=True, **kw):
        raise RuntimeError("kaboom")

    monkeypatch.setattr(
        reproduce_mod, "EXPERIMENTS", {"tiny-ok": tiny_ok, "tiny-boom": tiny_boom}
    )
    monkeypatch.setattr(
        reproduce_mod,
        "run_experiment",
        lambda name, quick: reproduce_mod.EXPERIMENTS[name](quick=quick),
    )
    index = reproduce(tmp_path / "results")
    text = index.read_text()
    assert "| tiny-ok | ok |" in text
    assert "FAILED (RuntimeError)" in text
    assert (tmp_path / "results" / "tiny-ok.txt").exists()
    assert "kaboom" in (tmp_path / "results" / "tiny-boom.txt").read_text()
    tables = (tmp_path / "results" / "tables.txt").read_text()
    assert "Barrier Model" in tables and "CM-5" in tables


def test_real_small_experiment(tmp_path):
    index = reproduce(
        tmp_path / "r", experiments=["ablation-overhead"], quick=True
    )
    assert "| ablation-overhead | ok |" in index.read_text()
    body = (tmp_path / "r" / "ablation-overhead.txt").read_text()
    assert "compensation" in body


def test_cli_reproduce(tmp_path, capsys):
    from repro.cli import main

    assert (
        main(
            [
                "reproduce",
                "--out",
                str(tmp_path / "out"),
                "--only",
                "ablation-overhead",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "REPORT.md" in out
    assert (tmp_path / "out" / "REPORT.md").exists()
