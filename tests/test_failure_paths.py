"""Existing failure paths: deadlock, runaway guard, machine deadlock.

These paths predate the fault-injection subsystem but were largely
untested; a robustness layer is only as good as the diagnoses under it.
"""

import pytest

from repro.core import presets
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.des import Deadlock, Environment, SimulationStalled
from repro.machine import Machine
from repro.pcxx import Collection, make_distribution
from repro.sim.simulator import Simulator


def simple_program(n, work_us=1000.0, iters=2):
    def factory(rt):
        coll = Collection(
            "c", make_distribution(n, n, "block"), element_nbytes=64
        )
        for i in range(n):
            coll.poke(i, float(i))

        def body(ctx):
            for _ in range(iters):
                yield from ctx.compute_us(work_us)
                if n > 1:
                    yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
                yield from ctx.barrier()

        return body

    return factory


def translated(n, **kw):
    return translate(measure(simple_program(n, **kw), n, name="simple"))


def test_des_deadlock_on_unreachable_event():
    """The engine raises Deadlock when the queue drains early."""
    env = Environment()
    never = env.event()

    def proc():
        yield never

    env.process(proc())
    with pytest.raises(Deadlock, match="deadlock"):
        env.run(never)


def test_simulator_max_events_runaway_guard():
    tp = translated(4)
    sim = Simulator(tp, presets.distributed_memory(), max_events=50)
    with pytest.raises(RuntimeError, match="exceeded 50 events"):
        sim.run()


def test_simulator_converts_deadlock_to_stalled():
    """A trace whose replies can never arrive yields a diagnosis, not a
    bare Deadlock: stalled runs must name who is blocked."""
    from dataclasses import replace

    from repro.faults import FaultPlan

    tp = translated(2)
    plan = FaultPlan(
        seed=1,
        msg_loss_rate=1.0,
        loss_kinds=("request", "reply"),
        request_timeout=500.0,
        max_retries=1,
    )
    params = replace(presets.distributed_memory(), faults=plan)
    with pytest.raises(SimulationStalled) as exc_info:
        Simulator(tp, params).run()
    assert exc_info.value.blocked
    assert isinstance(exc_info.value.blocked, tuple)
    assert isinstance(exc_info.value.pending_barriers, tuple)


def test_machine_deadlock_names_stuck_nodes():
    """One node skips the barrier: the reference machine reports which
    nodes never finished instead of spinning forever."""

    def factory(machine):
        def barrier_body(ctx):
            yield from ctx.compute(100.0)
            yield from ctx.barrier()

        def skip_body(ctx):
            yield from ctx.compute(100.0)

        return [barrier_body, skip_body]

    m = Machine(2)
    with pytest.raises(RuntimeError, match="machine deadlocked"):
        m.run(factory)


def test_simulation_stalled_carries_structured_diagnosis():
    exc = SimulationStalled(
        "stalled",
        blocked=[(0, "why")],
        pending_barriers=[(3, "1/2 arrivals")],
    )
    assert exc.blocked == ((0, "why"),)
    assert exc.pending_barriers == ((3, "1/2 arrivals"),)
    assert isinstance(exc, RuntimeError)
