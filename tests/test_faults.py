"""Fault injection and the unreliable-machine recovery protocol."""

from dataclasses import replace

import pytest

from repro.core import presets
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.des import SimulationStalled, Watchdog
from repro.faults import FaultInjector, FaultPlan, load_fault_plan
from repro.metrics.report import fault_section
from repro.pcxx import Collection, make_distribution
from repro.sim.simulator import simulate


def simple_program(n, work_us=1000.0, reads_per_iter=1, iters=2):
    def factory(rt):
        coll = Collection(
            "c", make_distribution(n, n, "block"), element_nbytes=64
        )
        for i in range(n):
            coll.poke(i, float(i))

        def body(ctx):
            for _ in range(iters):
                yield from ctx.compute_us(work_us)
                for r in range(reads_per_iter):
                    if n > 1:
                        yield from ctx.get(
                            coll, (ctx.tid + r + 1) % n, nbytes=8
                        )
                yield from ctx.barrier()

        return body

    return factory


def translated(n, **kw):
    return translate(measure(simple_program(n, **kw), n, name="simple"))


def faulty(params, **plan_fields):
    return replace(params, faults=FaultPlan(**plan_fields))


# -- plan ------------------------------------------------------------------


def test_plan_validation():
    with pytest.raises(ValueError, match="msg_loss_rate"):
        FaultPlan(msg_loss_rate=1.5)
    with pytest.raises(ValueError, match="straggler_factor"):
        FaultPlan(straggler_factor=0.5)
    with pytest.raises(ValueError, match="retry_backoff"):
        FaultPlan(retry_backoff=0.9)
    with pytest.raises(ValueError, match="max_retries"):
        FaultPlan(max_retries=-1)
    with pytest.raises(ValueError, match="loss_kinds"):
        FaultPlan(loss_kinds=("request", "bogus"))


def test_plan_null_detection():
    assert FaultPlan().is_null()
    assert not FaultPlan(msg_loss_rate=0.1).is_null()
    # An armed timeout is non-null: spurious timeouts can retransmit.
    assert not FaultPlan(request_timeout=100.0).is_null()
    # Seed alone injects nothing.
    assert FaultPlan(seed=99).is_null()


def test_plan_dict_roundtrip():
    plan = FaultPlan(seed=3, msg_loss_rate=0.1, loss_kinds=("reply",))
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    with pytest.raises(ValueError, match="unknown"):
        FaultPlan.from_dict({"msg_loss_rte": 0.1})


def test_load_fault_plan(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text('{"seed": 5, "msg_loss_rate": 0.2}')
    plan = load_fault_plan(path)
    assert plan.seed == 5 and plan.msg_loss_rate == 0.2
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError, match="bad.json"):
        load_fault_plan(bad)


def test_injector_refuses_null_plan():
    with pytest.raises(ValueError, match="null fault plan"):
        FaultInjector(FaultPlan())


# -- null-plan byte identity ------------------------------------------------


def test_null_plan_is_byte_identical():
    """Absent plan, None plan and all-zero plan all match exactly."""
    tp = translated(4)
    params = presets.distributed_memory()
    base = simulate(tp, params)
    for variant in (replace(params, faults=None), faulty(params)):
        res = simulate(tp, variant)
        assert res.execution_time == base.execution_time
        assert res.faults is None
        assert res.network.dropped == 0 and res.network.duplicated == 0
        for got, want in zip(res.processors, base.processors):
            assert got == want


def test_timeout_armed_but_no_faults_changes_nothing():
    """Regression: Timeout events are born TRIGGERED (= scheduled);
    the retry loop must test ``processed``, or every wait times out."""
    tp = translated(4)
    params = presets.distributed_memory()
    base = simulate(tp, params)
    res = simulate(
        tp, faulty(params, request_timeout=1e6, max_retries=3)
    )
    assert res.execution_time == base.execution_time
    totals = res.fault_totals()
    assert totals["timeouts"] == 0
    assert totals["retries"] == 0
    assert totals["retry_giveups"] == 0


# -- determinism ------------------------------------------------------------


PLAN_FIELDS = dict(
    seed=11,
    msg_loss_rate=0.1,
    msg_dup_rate=0.05,
    msg_jitter=30.0,
    straggler_rate=0.05,
    barrier_delay_rate=0.2,
    barrier_delay=50.0,
    request_timeout=20_000.0,
    max_retries=8,
)


def test_fault_runs_are_deterministic_with_nonzero_counters():
    tp = translated(4, iters=3)
    params = presets.distributed_memory()
    a = simulate(tp, faulty(params, **PLAN_FIELDS))
    b = simulate(tp, faulty(params, **PLAN_FIELDS))
    assert a.execution_time == b.execution_time
    assert a.fault_totals() == b.fault_totals()
    assert a.faults.any_injected()
    assert a.network.dropped > 0
    totals = a.fault_totals()
    assert totals["timeouts"] > 0
    assert totals["retries"] > 0


def test_different_seeds_differ():
    tp = translated(4, iters=3)
    params = presets.distributed_memory()
    a = simulate(tp, faulty(params, seed=1, **{
        k: v for k, v in PLAN_FIELDS.items() if k != "seed"
    }))
    b = simulate(tp, faulty(params, seed=2, **{
        k: v for k, v in PLAN_FIELDS.items() if k != "seed"
    }))
    assert a.execution_time != b.execution_time


# -- individual fault categories -------------------------------------------


def test_loss_with_retry_recovers_and_slows():
    tp = translated(2, iters=1)
    params = presets.distributed_memory()
    base = simulate(tp, params).execution_time
    res = simulate(
        tp,
        faulty(
            params,
            seed=3,
            msg_loss_rate=0.5,
            loss_kinds=("request",),
            request_timeout=2000.0,
            max_retries=10,
        ),
    )
    totals = res.fault_totals()
    if totals["messages_dropped"]:
        assert totals["retries"] >= totals["messages_dropped"]
        assert res.execution_time > base
    assert totals["retry_giveups"] == 0


def test_duplicates_are_tolerated_and_counted():
    tp = translated(4, iters=2)
    params = presets.distributed_memory()
    res = simulate(tp, faulty(params, seed=5, msg_dup_rate=1.0))
    assert res.network.duplicated > 0
    # Every duplicated reply/ack lands on a completed access.
    assert res.fault_totals()["late_replies"] > 0


def test_jitter_only_changes_time_without_dropping():
    tp = translated(4)
    params = presets.distributed_memory()
    base = simulate(tp, params).execution_time
    res = simulate(tp, faulty(params, seed=7, msg_jitter=200.0))
    assert res.network.dropped == 0
    assert res.network.total_jitter > 0
    assert res.execution_time != base


def test_stragglers_add_compute_time():
    tp = translated(2, reads_per_iter=0, iters=2)
    params = presets.ideal()
    base = simulate(tp, params)
    res = simulate(
        tp, faulty(params, straggler_rate=1.0, straggler_factor=2.0)
    )
    totals = res.fault_totals()
    assert totals["stragglers"] > 0
    # Every compute action straggled at factor 2: busy compute doubles.
    assert res.total_compute_time() == pytest.approx(
        2 * base.total_compute_time()
    )


def test_barrier_delays_counted_as_idle():
    tp = translated(4, reads_per_iter=0, iters=2)
    params = presets.distributed_memory()
    base = simulate(tp, params)
    res = simulate(
        tp, faulty(params, barrier_delay_rate=1.0, barrier_delay=500.0)
    )
    totals = res.fault_totals()
    assert totals["barrier_delays"] > 0
    assert res.execution_time > base.execution_time
    # The delay is idle time (barrier_wait), never busy overhead.
    overhead = sum(p.categories["barrier_overhead"] for p in res.processors)
    base_overhead = sum(
        p.categories["barrier_overhead"] for p in base.processors
    )
    assert overhead == pytest.approx(base_overhead)


# -- stall diagnosis ---------------------------------------------------------


def test_total_reply_loss_raises_stalled_naming_processors():
    """The acceptance case: a plan dropping 100% of replies must not
    hang — the run degrades to a SimulationStalled diagnosis."""
    tp = translated(4, iters=2)
    params = presets.distributed_memory()
    plan = FaultPlan(
        seed=1,
        msg_loss_rate=1.0,
        loss_kinds=("reply",),
        request_timeout=1000.0,
        max_retries=2,
    )
    with pytest.raises(SimulationStalled) as exc_info:
        simulate(tp, replace(params, faults=plan))
    exc = exc_info.value
    assert exc.blocked, "must name at least one blocked processor"
    pid, reason = exc.blocked[0]
    assert "gave up" in reason
    assert "stalled" in str(exc)


def test_wall_clock_budget_is_validated():
    with pytest.raises(ValueError, match="wall_clock_budget"):
        Watchdog(wall_clock_budget=0.0)
    with pytest.raises(ValueError, match="watchdog windows"):
        Watchdog(stall_event_window=0)


def test_watchdog_stall_and_budget_detection():
    wd = Watchdog(stall_event_window=100, check_interval=10)
    assert wd.check(0, (0, 0)) is None
    assert wd.check(50, (0, 0)) is None  # window not yet exceeded
    reason = wd.check(150, (0, 0))
    assert reason is not None and "no forward progress" in reason
    assert wd.check(200, (0, 1)) is None  # progress resets the window

    wd2 = Watchdog(wall_clock_budget=1e-9)
    reason = wd2.check(1, (0, 0))
    assert reason is not None and "wall-clock budget" in reason


# -- surfacing ---------------------------------------------------------------


def test_fault_section_renders_counters():
    tp = translated(4, iters=3)
    params = presets.distributed_memory()
    res = simulate(tp, faulty(params, **PLAN_FIELDS))
    text = fault_section(res)
    assert "fault model:" in text
    assert "timeouts" in text and "retries" in text
    assert "dropped" in text


def test_fault_section_empty_without_plan():
    tp = translated(2)
    res = simulate(tp, presets.distributed_memory())
    assert fault_section(res) == ""


def test_parameters_with_faults_group():
    params = presets.distributed_memory().with_(
        faults={"msg_loss_rate": 0.1, "seed": 4}
    )
    assert params.faults == FaultPlan(seed=4, msg_loss_rate=0.1)
    # Merging into an existing plan preserves other fields.
    params2 = params.with_(faults={"msg_jitter": 5.0})
    assert params2.faults.msg_loss_rate == 0.1
    assert params2.faults.msg_jitter == 5.0
    assert "faults" in params.describe()


def test_timeline_records_fault_instants():
    tp = translated(4, iters=3)
    params = presets.distributed_memory()
    res = simulate(tp, faulty(params, **PLAN_FIELDS), observe=True)
    names = {i.name for i in res.timeline.instants}
    assert any(n.startswith("fault.") for n in names)
