"""End-to-end integration: the full ExtraP story on real benchmarks."""

import pytest

from repro import (
    extrapolate,
    measure,
    presets,
    read_trace,
    simulate,
    translate,
    write_trace,
)
from repro.bench.grid import GridConfig
from repro.bench.grid import make_program as make_grid
from repro.bench.matmul import MatmulConfig
from repro.bench.matmul import make_program as make_matmul
from repro.machine import run_on_machine


def test_full_pipeline_through_files(tmp_path):
    """measure -> trace file -> read -> translate -> simulate -> metrics."""
    cfg = GridConfig(patch_rows=4, patch_cols=4, m=4, iterations=2)
    trace = measure(make_grid(cfg)(8), 8, name="grid", size_mode="actual")
    path = write_trace(trace, tmp_path / "grid.bin")
    back = read_trace(path)
    outcome = extrapolate(back, presets.distributed_memory())
    assert outcome.predicted_time > outcome.ideal_time > 0
    assert outcome.trace_stats.n_barriers == back.barrier_count()


def test_one_measurement_many_whatifs():
    """The paper's core workflow: a single 1-processor measurement
    answers a sweep of environment questions."""
    cfg = GridConfig(patch_rows=4, patch_cols=4, m=4, iterations=2)
    trace = measure(make_grid(cfg)(8), 8, name="grid", size_mode="actual")
    tp = translate(trace)
    times = {}
    for bw in (0.05, 0.01, 0.005):
        params = presets.distributed_memory().with_(
            network={"byte_transfer_time": bw}
        )
        times[bw] = simulate(tp, params).execution_time
    assert times[0.005] <= times[0.01] <= times[0.05]


def test_prediction_brackets_reference_machine():
    """Extrapolated CM-5 predictions should land in the same regime as
    the reference machine's direct simulation (shape validation); we
    require agreement within a factor of three, far tighter than the
    orders of magnitude separating the parameter sets."""
    cfg = MatmulConfig(size=8)
    maker = make_matmul(cfg)
    for n in (4, 16):
        trace = measure(maker(n), n, name="matmul")
        predicted = extrapolate(trace, presets.cm5()).predicted_time
        measured = run_on_machine(maker(n), n, name="matmul").execution_time
        assert predicted == pytest.approx(measured, rel=2.0)


def test_extrapolated_trace_is_structurally_valid():
    from repro.trace.trace import Trace, TraceMeta
    from repro.trace.validate import validate_trace

    cfg = GridConfig(patch_rows=2, patch_cols=2, m=4, iterations=2)
    trace = measure(make_grid(cfg)(4), 4, name="grid")
    outcome = extrapolate(trace, presets.cm5())
    merged = [e for tt in outcome.result.threads for e in tt.events]
    merged.sort(key=lambda e: (e.time, e.thread))
    validate_trace(Trace(TraceMeta(n_threads=4), merged))


def test_scaled_trace_machine_cancels_out():
    """Measuring on a faster trace machine with a matching MipsRatio
    must predict the same target time (the processor-model contract)."""
    cfg = GridConfig(patch_rows=2, patch_cols=2, m=4, iterations=2)
    maker = make_grid(cfg)
    slow_trace = measure(maker(4), 4, name="grid", trace_mflops=1.0)
    fast_trace = measure(maker(4), 4, name="grid", trace_mflops=2.0)
    base = presets.distributed_memory()
    t_slow = extrapolate(slow_trace, base.with_(processor={"mips_ratio": 1.0}))
    t_fast = extrapolate(fast_trace, base.with_(processor={"mips_ratio": 2.0}))
    assert t_fast.predicted_time == pytest.approx(t_slow.predicted_time)
