"""The reference target-machine simulator."""

import pytest

from repro.machine import CM5_SPEC, Machine, MachineSpec, run_on_machine
from repro.pcxx import Collection, make_distribution
from repro.trace.events import EventKind


def simple_factory(n, work=1000.0, read=True):
    def factory(rt):
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        for i in range(n):
            coll.poke(i, float(i) * 2)

        def body(ctx):
            yield from ctx.compute(work)
            if read and n > 1:
                v = yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
                assert v == float((ctx.tid + 1) % n) * 2
            yield from ctx.barrier()

        return body

    return factory


def test_compute_at_node_rate():
    res = run_on_machine(simple_factory(1, work=2764.5, read=False), 1)
    # 2764.5 flops at 2.7645 MFLOPS = 1000us, plus barrier costs.
    assert res.execution_time == pytest.approx(
        1000.0
        + CM5_SPEC.barrier_entry_time
        + CM5_SPEC.barrier_latency
        + CM5_SPEC.barrier_exit_time
    )


def test_remote_values_are_real():
    res = run_on_machine(simple_factory(4), 4)  # asserts inside bodies
    assert res.execution_time > 0
    assert res.messages == 8  # request+reply per node


def test_measured_trace_shape():
    res = run_on_machine(simple_factory(2), 2)
    for tt in res.threads:
        kinds = [e.kind for e in tt.events]
        assert kinds[0] == EventKind.THREAD_BEGIN
        assert kinds[-1] == EventKind.THREAD_END
        assert EventKind.BARRIER_ENTER in kinds
        times = [e.time for e in tt.events]
        assert times == sorted(times)


def test_barrier_synchronises():
    def factory(rt):
        n = rt.n_threads
        marks = {}

        def body(ctx):
            yield from ctx.compute_us(100.0 * (ctx.tid + 1))
            yield from ctx.barrier()
            marks[ctx.tid] = ctx.now

        factory.marks = marks
        return body

    res = run_on_machine(factory, 4)
    marks = factory.marks
    # Everyone leaves the barrier within exit-time of each other, after
    # the slowest arrival (400us).
    assert min(marks.values()) > 400.0
    assert max(marks.values()) - min(marks.values()) < 1.0


def test_remote_write():
    def factory(rt):
        n = 2
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        coll.poke(0, 0.0)
        coll.poke(1, 0.0)

        def body(ctx):
            if ctx.tid == 0:
                yield from ctx.put(coll, 1, 42.0)
            yield from ctx.barrier()
            if ctx.tid == 1:
                v = yield from ctx.get(coll, 1)
                assert v == 42.0

        return body

    res = run_on_machine(factory, 2)
    assert res.nodes[1].requests_served == 1


def test_port_contention_serialises_hotspot():
    """n-1 nodes reading node 0 simultaneously queue on its ports, so the
    hotspot run takes longer per message than a pairwise pattern."""
    n = 8

    def hotspot(rt):
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=4096)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            if ctx.tid != 0:
                yield from ctx.get(coll, 0)  # full 4 KB elements
            yield from ctx.barrier()

        return body

    def pairwise(rt):
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=4096)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            if ctx.tid % 2 == 1:
                yield from ctx.get(coll, ctx.tid - 1)
            yield from ctx.barrier()

        return body

    hot = run_on_machine(hotspot, n)
    pair = run_on_machine(pairwise, n)
    assert hot.execution_time > pair.execution_time


def test_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec(node_mflops=0)
    with pytest.raises(ValueError):
        MachineSpec(byte_time=-1)
    with pytest.raises(ValueError):
        MachineSpec(fat_tree_arity=1)


def test_machine_run_twice_rejected():
    m = Machine(2)
    m.run(simple_factory(2))
    with pytest.raises(RuntimeError):
        m.run(simple_factory(2))


def test_paragon_spec_differs_from_cm5():
    from repro.machine import PARAGON_SPEC

    def comm_heavy(rt):
        n = rt.n_threads
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            for _ in range(3):
                yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=64)
                yield from ctx.barrier()

        return body

    cm5 = run_on_machine(comm_heavy, 8, name="x")
    paragon = run_on_machine(comm_heavy, 8, spec=PARAGON_SPEC, name="x")
    # Different machines, different times (Paragon's start-up and
    # software barriers dominate this message-bound pattern).
    assert paragon.execution_time != cm5.execution_time
    assert paragon.spec.name == "paragon"


def test_mesh_topology_machine_has_distance_effects():
    from repro.machine import MachineSpec

    mesh = MachineSpec(name="mesh", topology="mesh2d", hop_time=50.0)

    def read_from(owner):
        def factory(rt):
            n = rt.n_threads
            coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
            for i in range(n):
                coll.poke(i, i)

            def body(ctx):
                if ctx.tid == 0:
                    yield from ctx.get(coll, owner, nbytes=8)
                yield from ctx.barrier()

            return body

        return factory

    near = run_on_machine(read_from(1), 16, spec=mesh, name="near")
    far = run_on_machine(read_from(15), 16, spec=mesh, name="far")
    assert far.execution_time > near.execution_time


def test_paragon_calibration():
    from repro.calibrate import calibrate
    from repro.machine import PARAGON_SPEC

    params, report = calibrate(PARAGON_SPEC)
    assert report.byte_transfer_time == pytest.approx(
        PARAGON_SPEC.byte_time, rel=0.05
    )
    assert params.name == "calibrated-paragon"


def test_benchmarks_run_on_machine():
    """The same benchmark programs (with their internal verification)
    run unmodified on the reference machine."""
    from repro.bench.grid import GridConfig, make_program

    cfg = GridConfig(patch_rows=2, patch_cols=2, m=4, iterations=2)
    res = run_on_machine(make_program(cfg)(4), 4, name="grid")
    assert res.execution_time > 0
    assert res.meta.program == "grid"
