"""Metrics derivation and scaling studies."""

import pytest

from repro.core import presets
from repro.metrics import derive_metrics, speedups
from repro.metrics.scaling import PAPER_PROCESSOR_COUNTS, run_scaling_study
from repro.pcxx import Collection, make_distribution


def compute_heavy(n_threads):
    """Fixed 40 ms of total work, strong-scaled across the threads."""

    def factory(rt):
        n = rt.n_threads
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=8)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            yield from ctx.compute_us(40000.0 / n)
            if n > 1:
                yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
            yield from ctx.barrier()

        return body

    return factory


def test_speedups():
    assert speedups({1: 100.0, 2: 50.0, 4: 40.0}) == {1: 1.0, 2: 2.0, 4: 2.5}
    assert speedups({}) == {}
    with pytest.raises(ValueError):
        speedups({1: 0.0, 2: 2.0})


def test_speedups_uses_smallest_count_as_base():
    s = speedups({4: 50.0, 8: 25.0})
    assert s == {4: 1.0, 8: 2.0}


def test_paper_processor_counts():
    assert tuple(PAPER_PROCESSOR_COUNTS) == (1, 2, 4, 8, 16, 32)


def _degenerate_result(execution_time=0.0, n_processors=1):
    """A SimulationResult with no real work behind it."""
    from repro.sim.network import NetworkStats
    from repro.sim.result import ProcessorStats, SimulationResult
    from repro.trace.trace import TraceMeta

    return SimulationResult(
        meta=TraceMeta(n_threads=max(n_processors, 1)),
        params=presets.distributed_memory(),
        execution_time=execution_time,
        processors=[ProcessorStats(pid=i) for i in range(n_processors)],
        threads=[],
        network=NetworkStats(),
    )


def test_metrics_from_result_is_derive_metrics():
    from repro.metrics import metrics_from_result

    assert metrics_from_result is derive_metrics


def test_derive_metrics_guards_zero_execution_time():
    """Regression: a zero-time result with a baseline used to raise
    ZeroDivisionError; speedup/efficiency must come back as None."""
    m = derive_metrics(_degenerate_result(execution_time=0.0), baseline_time=10.0)
    assert m.speedup is None and m.efficiency is None
    assert m.utilization == 0.0


def test_derive_metrics_guards_negative_execution_time():
    m = derive_metrics(_degenerate_result(execution_time=-5.0), baseline_time=10.0)
    assert m.speedup is None and m.efficiency is None


def test_derive_metrics_guards_no_processors():
    m = derive_metrics(
        _degenerate_result(execution_time=3.0, n_processors=0), baseline_time=10.0
    )
    assert m.speedup is None and m.efficiency is None
    assert m.n_processors == 0
    assert m.utilization == 0.0


def test_derive_metrics_rejects_bad_baseline():
    with pytest.raises(ValueError):
        derive_metrics(_degenerate_result(execution_time=1.0), baseline_time=0.0)


def test_derive_metrics_without_baseline():
    from repro.core.pipeline import measure_and_extrapolate

    out = measure_and_extrapolate(
        compute_heavy(2), 2, presets.distributed_memory(), name="m"
    )
    m = derive_metrics(out.result)
    assert m.speedup is None and m.efficiency is None
    assert m.execution_time > 0
    assert m.n_processors == 2
    assert 0 < m.utilization <= 1
    assert m.comp_comm_ratio > 0
    assert m.barrier_count == 1


def test_derive_metrics_with_baseline():
    from repro.core.pipeline import measure_and_extrapolate

    out = measure_and_extrapolate(
        compute_heavy(4), 4, presets.distributed_memory(), name="m"
    )
    m = derive_metrics(out.result, baseline_time=4 * out.result.execution_time)
    assert m.speedup == pytest.approx(4.0)
    assert m.efficiency == pytest.approx(1.0)
    with pytest.raises(ValueError):
        derive_metrics(out.result, baseline_time=0.0)


def test_scaling_study():
    study = run_scaling_study(
        compute_heavy,
        presets.distributed_memory(),
        name="ch",
        processor_counts=(1, 2, 4),
    )
    assert sorted(study.times) == [1, 2, 4]
    curve = study.speedup_curve
    assert curve[1] == 1.0
    assert curve[2] > 1.5  # compute-heavy: near-linear
    assert curve[4] > 2.5
    assert study.best_processor_count() == 4
    assert study.point(2).n == 2
    with pytest.raises(KeyError):
        study.point(3)
    text = study.format()
    assert "speedup" in text and "ch" in text


def test_comp_comm_ratio_infinite_without_comm():
    from repro.core.pipeline import measure_and_extrapolate

    out = measure_and_extrapolate(
        compute_heavy(1), 1, presets.ideal(), name="m"
    )
    m = derive_metrics(out.result)
    assert m.comp_comm_ratio == float("inf")
