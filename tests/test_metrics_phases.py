"""Per-phase metrics from MARK events."""

import pytest

from repro.core import presets
from repro.core.pipeline import extrapolate, measure
from repro.metrics.phases import PhaseError, phase_stats, phase_table
from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import ThreadTrace


def tt(events):
    return ThreadTrace(0, events)


def mark(t, tag, thread=0):
    return TraceEvent(t, thread, EventKind.MARK, tag=tag)


def test_basic_phase_extraction():
    threads = [
        tt(
            [
                mark(0.0, "begin:a"),
                mark(10.0, "end:a"),
                mark(10.0, "begin:b"),
                mark(25.0, "end:b"),
                mark(30.0, "begin:a"),
                mark(32.0, "end:a"),
            ]
        )
    ]
    stats = phase_stats(threads)
    assert stats["a"].per_thread == {0: 12.0}
    assert stats["a"].episodes == 2
    assert stats["b"].per_thread == {0: 15.0}


def test_per_thread_aggregation_and_imbalance():
    threads = [
        ThreadTrace(0, [mark(0.0, "begin:x"), mark(10.0, "end:x")]),
        ThreadTrace(1, [mark(0.0, "begin:x", 1), mark(30.0, "end:x", 1)]),
    ]
    st = phase_stats(threads)["x"]
    assert st.total == 40.0
    assert st.max_thread == 30.0
    assert st.min_thread == 10.0
    assert st.imbalance == pytest.approx(1.5)


def test_nesting_different_phases_ok():
    threads = [
        tt(
            [
                mark(0.0, "begin:outer"),
                mark(2.0, "begin:inner"),
                mark(5.0, "end:inner"),
                mark(9.0, "end:outer"),
            ]
        )
    ]
    stats = phase_stats(threads)
    assert stats["outer"].per_thread[0] == 9.0
    assert stats["inner"].per_thread[0] == 3.0


@pytest.mark.parametrize(
    "events,err",
    [
        ([mark(0.0, "begin:a"), mark(1.0, "begin:a")], "begun twice"),
        ([mark(0.0, "end:a")], "without a begin"),
        ([mark(0.0, "begin:a")], "never ended"),
    ],
)
def test_malformed_markers(events, err):
    with pytest.raises(PhaseError, match=err):
        phase_stats([tt(events)])


def test_non_phase_marks_ignored():
    stats = phase_stats([tt([mark(0.0, "checkpoint-1")])])
    assert stats == {}


def test_phase_table_formatting():
    threads = [tt([mark(0.0, "begin:a"), mark(10.0, "end:a")])]
    out = phase_table(threads)
    assert "phase" in out and "a" in out
    assert "(no phase markers" in phase_table([tt([])])


def test_phases_survive_the_full_pipeline():
    """Poisson marks dst/transpose/solve; the predictions carry them."""
    from repro.bench.poisson import PoissonConfig, make_program

    cfg = PoissonConfig(size=16)
    trace = measure(make_program(cfg)(4), 4, name="poisson")
    # Marks exist in the measured trace...
    assert phase_stats(trace.split_by_thread())["transpose"].episodes == 8
    # ...and in the extrapolated traces with predicted timings.
    outcome = extrapolate(trace, presets.distributed_memory())
    stats = phase_stats(outcome.result.threads)
    assert set(stats) == {"dst", "transpose", "solve"}
    assert stats["transpose"].total > 0
    # The transposes carry the communication: under a slow network they
    # dominate the predicted time far more than under an ideal one.
    ideal = extrapolate(trace, presets.ideal())
    slow_share = stats["transpose"].total / outcome.predicted_time
    ideal_stats = phase_stats(ideal.result.threads)
    ideal_share = ideal_stats["transpose"].total / ideal.predicted_time
    assert slow_share > ideal_share
