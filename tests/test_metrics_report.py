"""The performance-debugging report renderer."""

import pytest

from repro.core import presets
from repro.core.pipeline import measure_and_extrapolate
from repro.metrics.report import (
    bottleneck_summary,
    breakdown_table,
    full_report,
    timeline,
)
from repro.pcxx import Collection, make_distribution
from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import ThreadTrace


def outcome(n=4):
    def program(rt):
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            yield from ctx.compute_us(500.0 * (ctx.tid + 1))
            if n > 1:
                yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
            yield from ctx.barrier()

        return body

    return measure_and_extrapolate(
        program, n, presets.distributed_memory(), name="demo"
    )


def test_breakdown_table_structure():
    out = breakdown_table(outcome().result)
    lines = out.splitlines()
    assert "compute" in lines[1]
    assert len(lines) == 2 + 1 + 4  # title + header + rule + 4 procs


def test_timeline_markers():
    tt = ThreadTrace(
        0,
        [
            TraceEvent(0.0, 0, EventKind.THREAD_BEGIN),
            TraceEvent(40.0, 0, EventKind.REMOTE_READ, owner=1, nbytes=8),
            TraceEvent(50.0, 0, EventKind.BARRIER_ENTER, barrier_id=0),
            TraceEvent(90.0, 0, EventKind.BARRIER_EXIT, barrier_id=0),
            TraceEvent(100.0, 0, EventKind.THREAD_END),
        ],
    )
    out = timeline([tt], width=20, end_time=100.0)
    lane = out.splitlines()[1]
    assert "r" in lane
    assert "B" in lane
    assert "=" in lane
    # Barrier occupies roughly the 50..90% stretch.
    bar_positions = [i for i, ch in enumerate(lane) if ch == "B"]
    assert bar_positions and bar_positions[0] > len(lane) * 0.3


def test_timeline_empty():
    assert "(no threads)" in timeline([])
    assert "(empty timeline)" in timeline([ThreadTrace(0, [])])


def test_timeline_tail_dots():
    short = ThreadTrace(
        0,
        [
            TraceEvent(0.0, 0, EventKind.THREAD_BEGIN),
            TraceEvent(10.0, 0, EventKind.THREAD_END),
        ],
    )
    out = timeline([short], width=20, end_time=100.0)
    assert out.splitlines()[1].rstrip("|").endswith(".")


def test_bottleneck_summary():
    out = bottleneck_summary(outcome().result)
    assert "dominant non-idle cost" in out
    assert "utilisation" in out


def test_full_report_contains_everything():
    o = outcome()
    out = full_report(o)
    assert "extrapolation report" in out
    assert "predicted time" in out
    assert "timeline" in out
    assert "bottleneck summary" in out
    assert f"{o.predicted_time:.1f}" in out
