"""Focused tests for corners not covered elsewhere."""

import pytest

from repro.des import Environment
from repro.machine.network import PortNetwork, WireMessage
from repro.machine.spec import MachineSpec


# -- CLI override parsing ------------------------------------------------------


def test_cli_override_types():
    from repro.cli import _apply_overrides
    from repro.core import presets

    p = _apply_overrides(
        presets.ideal(),
        [
            "processor.mips_ratio=0.25",
            "network.request_nbytes=32",
            "network.contention=TRUE",
            "network.topology=hypercube",
            "barrier.by_msgs=false",
        ],
    )
    assert p.processor.mips_ratio == 0.25
    assert p.network.request_nbytes == 32
    assert p.network.contention is True
    assert p.network.topology == "hypercube"
    assert p.barrier.by_msgs is False


def test_cli_override_bad_group():
    from repro.cli import _apply_overrides
    from repro.core import presets

    with pytest.raises(ValueError, match="group.field=value"):
        _apply_overrides(presets.ideal(), ["nope"])
    with pytest.raises(ValueError, match="martian"):
        _apply_overrides(presets.ideal(), ["martian.x=1"])


# -- DES run(until=failed event) ---------------------------------------------


def test_run_until_failed_event_raises():
    env = Environment()

    def boom(env):
        yield env.timeout(1)
        raise KeyError("inner")

    p = env.process(boom(env))
    with pytest.raises(KeyError, match="inner"):
        env.run(p)


# -- machine port network directly -----------------------------------------------


def test_port_network_injection_serialises():
    """Two back-to-back sends from one node: the second waits for the
    first's injection occupancy."""
    env = Environment()
    spec = MachineSpec(msg_startup=0.0, byte_time=1.0, hop_time=0.0, header_nbytes=0)
    net = PortNetwork(env, 3, spec)
    arrivals = []
    net.attach([lambda m, i=i: arrivals.append((i, env.now)) for i in range(3)])

    def sender(env):
        yield from net.send(WireMessage("reply", src=0, dst=1, nbytes=100, msg_id=1))
        yield from net.send(WireMessage("reply", src=0, dst=2, nbytes=100, msg_id=2))

    env.process(sender(env))
    env.run(None)
    # injection 100us each, ejection 100us: first delivered at 200,
    # second injected 100..200, ejected 200..300.
    times = sorted(t for _, t in arrivals)
    assert times[0] == pytest.approx(200.0)
    assert times[1] == pytest.approx(300.0)


def test_port_network_rejects_self_and_unattached():
    env = Environment()
    net = PortNetwork(env, 2, MachineSpec())

    def sending(env):
        yield from net.send(WireMessage("reply", src=0, dst=1, nbytes=1, msg_id=1))

    with pytest.raises(RuntimeError, match="not attached"):
        env.run(env.process(sending(env)))

    net.attach([lambda m: None, lambda m: None])

    def self_send(env):
        yield from net.send(WireMessage("reply", src=1, dst=1, nbytes=1, msg_id=2))

    with pytest.raises(ValueError, match="to self"):
        env.run(env.process(self_send(env)))


def test_port_network_hops_use_spec_topology():
    env = Environment()
    mesh = MachineSpec(topology="mesh2d")
    net = PortNetwork(env, 16, mesh)
    assert net.hops(0, 15) == 6  # Manhattan across a 4x4 mesh
    cm5 = MachineSpec()
    net2 = PortNetwork(env, 16, cm5)
    assert net2.hops(0, 15) == 4  # fat-tree up-down


# -- fig4 filters power-of-two-only benchmarks ---------------------------------


def test_fig4_pow2_filter():
    from repro.experiments import fig4

    res = fig4.run(
        quick=True, benchmarks=("sort",), processor_counts=(1, 2, 3, 4)
    )
    assert sorted(res.series["sort"]) == [1, 2, 4]


# -- ascii plot series priority --------------------------------------------------


def test_asciiplot_collision_keeps_first_series():
    from repro.util.asciiplot import ascii_series_plot

    out = ascii_series_plot(
        {"first": [(1, 1.0)], "second": [(1, 1.0)]}, width=8, height=3
    )
    # grid rows sit between the border lines (no title given).
    body = "\n".join(out.splitlines()[1:4])
    assert "o" in body  # first series' mark wins the cell
    assert "x" not in body


# -- scheduler current property --------------------------------------------------


def test_scheduler_current_requires_running_thread():
    from repro.threads import Scheduler

    sched = Scheduler()
    with pytest.raises(RuntimeError, match="no thread"):
        _ = sched.current
