"""Chrome trace-event / CSV exporters and the timeline loader."""

import json
import math

import pytest

from repro.bench.suite import get_benchmark
from repro.core import presets
from repro.core.pipeline import extrapolate, measure
from repro.obs.export import (
    chrome_trace_json,
    counters_csv,
    load_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_counters_csv,
)
from repro.obs.recorder import TimelineRecorder


def small_timeline():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 5.0)
    rec.span(1, "service", 2.0, 3.0)
    rec.instant(0, "remote_read", 4.0, owner=1, nbytes=8)
    rec.counter("net.in_flight", 1.0, 1)
    rec.counter("proc0.rxq_depth", 2.0, 3)
    return rec.finalize(n_procs=2, end_time=5.0, program="toy", params_name="t")


@pytest.fixture(scope="module")
def grid_result():
    info = get_benchmark("grid")
    trace = measure(info.make_program()(8), 8, name="grid")
    return extrapolate(
        trace, presets.distributed_memory(), observe=True
    ).result


def test_chrome_trace_structure_small():
    doc = to_chrome_trace(small_timeline())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert phases <= {"X", "i", "C"}
    # Per-proc counter rides on its processor; global one on pid=n_procs.
    by_name = {e["name"]: e for e in doc["traceEvents"]}
    assert by_name["proc0.rxq_depth"]["pid"] == 0
    assert by_name["net.in_flight"]["pid"] == 2
    assert by_name["remote_read"]["args"] == {"nbytes": 8, "owner": 1}


def test_chrome_trace_schema_acceptance(grid_result):
    """Acceptance: structure Perfetto's trace-event importer accepts."""
    doc = to_chrome_trace(grid_result.timeline)
    events = doc["traceEvents"]
    assert events
    last_ts = -1.0
    procs_seen = set()
    for ev in events:
        assert ev["ph"] in {"X", "i", "C"}
        assert isinstance(ev["pid"], int) and ev["pid"] >= 0
        assert isinstance(ev["tid"], int) and ev["tid"] >= 0
        assert ev["ts"] >= 0.0
        assert ev["ts"] >= last_ts  # monotone (sorted) timestamps
        last_ts = ev["ts"]
        if ev["ph"] == "X":
            assert ev["dur"] > 0
            assert ev["pid"] == ev["tid"]  # one track per processor
            procs_seen.add(ev["pid"])
        if ev["ph"] == "i":
            assert ev["s"] == "t"
        if ev["ph"] == "C":
            assert "value" in ev["args"]
    assert procs_seen == set(range(grid_result.n_processors))


def test_chrome_span_totals_match_stats(grid_result):
    """Acceptance: per-category span totals in the *exported* JSON agree
    with the ProcessorStats busy-time categories."""
    doc = to_chrome_trace(grid_result.timeline)
    totals = {}
    for ev in doc["traceEvents"]:
        if ev["ph"] == "X":
            key = (ev["pid"], ev["name"])
            totals[key] = totals.get(key, 0.0) + ev["dur"]
    for p in grid_result.processors:
        for cat, expected in p.categories.items():
            got = totals.get((p.pid, cat), 0.0)
            assert math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-6)


def test_export_deterministic_same_seed():
    """Acceptance: same seed + params => byte-identical export."""

    def run():
        info = get_benchmark("grid")
        trace = measure(info.make_program()(4), 4, name="grid")
        out = extrapolate(trace, presets.distributed_memory(), observe=True)
        return chrome_trace_json(out.result.timeline)

    assert run() == run()


def test_roundtrip_through_file(tmp_path):
    tl = small_timeline()
    path = write_chrome_trace(tl, tmp_path / "t.json")
    loaded = load_chrome_trace(path)
    assert loaded.n_procs == tl.n_procs
    assert loaded.end_time == tl.end_time
    assert loaded.program == "toy"
    assert loaded.spans == tl.spans
    assert loaded.instants == tl.instants
    assert {n: s.samples for n, s in loaded.counters.items()} == {
        n: s.samples for n, s in tl.counters.items()
    }
    # Re-export of the loaded timeline is byte-identical (normal form).
    assert chrome_trace_json(loaded) == chrome_trace_json(tl)


def test_roundtrip_full_simulation(tmp_path, grid_result):
    path = write_chrome_trace(grid_result.timeline, tmp_path / "g.json")
    loaded = load_chrome_trace(path)
    assert chrome_trace_json(loaded) == chrome_trace_json(grid_result.timeline)


def test_loader_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_chrome_trace(bad)
    notrace = tmp_path / "nt.json"
    notrace.write_text(json.dumps({"foo": 1}))
    with pytest.raises(ValueError, match="traceEvents"):
        load_chrome_trace(notrace)
    wrong_schema = tmp_path / "ws.json"
    wrong_schema.write_text(
        json.dumps({"traceEvents": [], "otherData": {"schema": 999}})
    )
    with pytest.raises(ValueError, match="schema"):
        load_chrome_trace(wrong_schema)


def _trace_doc(events):
    return json.dumps({"traceEvents": events, "otherData": {"schema": 1}})


@pytest.mark.parametrize(
    "event,match",
    [
        ({"name": "compute", "pid": 0, "ts": 1.0}, "missing required field 'ph'"),
        ({"ph": "X", "name": "compute", "pid": 0}, "missing required field 'ts'"),
        (
            {"ph": "X", "name": "compute", "pid": 0, "ts": "soon"},
            "'ts' must be a number",
        ),
        (
            {"ph": "i", "name": "mark", "pid": 0, "ts": True},
            "'ts' must be a number",
        ),
        ({"ph": "X", "name": "compute", "ts": 1.0}, "missing required field 'pid'"),
        (
            {"ph": "X", "name": "compute", "pid": 0, "ts": 1.0, "dur": "5"},
            "'dur' must be a number",
        ),
        ({"ph": "X", "pid": 0, "ts": 1.0}, "'name' must be a non-empty string"),
        (
            {"ph": "C", "name": "", "ts": 1.0, "args": {"value": 1}},
            "'name' must be a non-empty string",
        ),
        ("not-an-object", "expected an object"),
    ],
)
def test_loader_rejects_malformed_events(tmp_path, event, match):
    path = tmp_path / "bad.json"
    path.write_text(_trace_doc([event]))
    with pytest.raises(ValueError, match=match):
        load_chrome_trace(path)


def test_loader_names_offending_event_index(tmp_path):
    path = tmp_path / "bad.json"
    good = {"ph": "X", "name": "compute", "pid": 0, "ts": 0.0, "dur": 1.0}
    path.write_text(_trace_doc([good, {"name": "x", "ts": 2.0}]))
    with pytest.raises(ValueError, match=r"traceEvents\[1\]"):
        load_chrome_trace(path)


def test_loader_rejects_non_list_trace_events(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"traceEvents": {"ph": "X"}}))
    with pytest.raises(ValueError, match="must be a list"):
        load_chrome_trace(path)


def test_loader_skips_foreign_phases(tmp_path):
    """Metadata events from other tools pass through untouched."""
    path = tmp_path / "meta.json"
    path.write_text(
        _trace_doc(
            [
                {"ph": "M", "name": "process_name", "pid": 0},
                {"ph": "X", "name": "compute", "pid": 0, "ts": 0.0, "dur": 2.0},
            ]
        )
    )
    loaded = load_chrome_trace(path)
    assert [s.category for s in loaded.spans] == ["compute"]


def test_counters_csv(tmp_path):
    tl = small_timeline()
    csv = counters_csv(tl)
    lines = csv.strip().splitlines()
    assert lines[0] == "counter,t_us,value"
    assert "net.in_flight,1,1" in lines
    assert "proc0.rxq_depth,2,3" in lines
    path = write_counters_csv(tl, tmp_path / "c.csv")
    assert path.read_text() == csv


# -- hostile names -----------------------------------------------------------
#
# Benchmark/span names flow into exported counter and event names
# unmodified; quotes, commas, newlines and non-ASCII must survive both
# exporters without corrupting the container format.

HOSTILE_NAMES = [
    'net,"weird"',
    "multi\nline",
    'quote"comma,cr\rname',
    "unicode-Ω-名前",
    "trailing space ",
]


def hostile_timeline():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 5.0)
    for i, name in enumerate(HOSTILE_NAMES):
        rec.counter(name, float(i), i)
        rec.instant(0, name, float(i))
    return rec.finalize(n_procs=1, end_time=5.0, program='p"1', params_name="t")


def test_chrome_json_hostile_names_stay_valid_and_roundtrip(tmp_path):
    tl = hostile_timeline()
    text = chrome_trace_json(tl)
    doc = json.loads(text)  # must parse — names can't break the JSON
    exported = {e["name"] for e in doc["traceEvents"]}
    assert set(HOSTILE_NAMES) <= exported
    path = tmp_path / "hostile.json"
    write_chrome_trace(tl, path)
    loaded = load_chrome_trace(path)
    assert sorted(loaded.counters) == sorted(HOSTILE_NAMES)
    assert {i.name for i in loaded.instants} == set(HOSTILE_NAMES)
    # Loading and re-exporting is byte-stable.
    assert chrome_trace_json(loaded) == text


def test_counters_csv_hostile_names_quoted(tmp_path):
    tl = hostile_timeline()
    csv = counters_csv(tl)
    lines = csv.strip().splitlines()
    # One header plus exactly one record per sample: a newline in a
    # name must not smear a record across lines.
    assert len(lines) == 1 + len(HOSTILE_NAMES)
    recovered = []
    for line in lines[1:]:
        field = line.rsplit(",", 2)[0]
        assert field.startswith('"')  # every hostile name gets quoted
        recovered.append(json.loads(field))
    assert sorted(recovered) == sorted(HOSTILE_NAMES)


def test_counters_csv_plain_names_unquoted():
    csv = counters_csv(small_timeline())
    assert "net.in_flight,1,1" in csv.splitlines()
