"""ASCII Gantt rendering and the shared lane-framing helper."""

import pytest

from repro.obs.gantt import ascii_gantt
from repro.obs.recorder import TimelineRecorder
from repro.util.asciiplot import ascii_lanes


def test_ascii_lanes_frames_and_legend():
    out = ascii_lanes(
        [("p0", "==.."), ("p1", "..==")],
        title="t",
        legend={"=": "busy", ".": "idle"},
        footer="0 .. 4",
    )
    lines = out.splitlines()
    assert lines[0] == "t"
    assert "|==..|" in lines[1]
    assert "|..==|" in lines[2]
    assert "0 .. 4" in lines[3]
    assert "==busy" in lines[4]


def test_ascii_lanes_validates():
    with pytest.raises(ValueError, match="no lanes"):
        ascii_lanes([])
    with pytest.raises(ValueError, match="same width"):
        ascii_lanes([("a", "=="), ("b", "=")])


def test_gantt_basic_painting():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 5.0)
    rec.span(0, "comm_wait", 5.0, 10.0)
    rec.span(1, "barrier_wait", 0.0, 8.0)
    rec.span(1, "service", 2.0, 4.0)  # busy nested inside the wait
    tl = rec.finalize(n_procs=2, end_time=10.0, program="toy")
    out = ascii_gantt(tl, width=20)
    lines = out.splitlines()
    p0 = next(line for line in lines if line.strip().startswith("p0"))
    p1 = next(line for line in lines if line.strip().startswith("p1"))
    assert "=" in p0 and "w" in p0
    # Busy overpaints the wait it nests in; wait fills the rest.
    assert "s" in p1 and "B" in p1
    # Lane tail past end of recorded spans on p1 is idle.
    assert p1.rstrip().endswith(".|")
    assert "legend:" in lines[-1]


def test_gantt_priority_busy_over_wait():
    rec = TimelineRecorder()
    rec.span(0, "comm_wait", 0.0, 10.0)
    rec.span(0, "service", 0.0, 10.0)
    tl = rec.finalize(n_procs=1, end_time=10.0)
    out = ascii_gantt(tl, width=16)
    lane = next(
        line for line in out.splitlines() if line.strip().startswith("p0")
    )
    cells = lane.split("|")[1]
    assert set(cells) == {"s"}


def test_gantt_unknown_category_marked():
    rec = TimelineRecorder()
    rec.span(0, "custom_thing", 0.0, 10.0)
    tl = rec.finalize(n_procs=1, end_time=10.0)
    out = ascii_gantt(tl, width=16)
    assert "?" in out
    assert "custom_thing" in out


def test_gantt_empty_and_bad_width():
    tl = TimelineRecorder().finalize(n_procs=0, end_time=0.0)
    assert ascii_gantt(tl) == "(empty timeline)"
    tl2 = TimelineRecorder().finalize(n_procs=1, end_time=1.0)
    with pytest.raises(ValueError, match="width"):
        ascii_gantt(tl2, width=4)
