"""The timeline recorder, counter series and derived samplers."""

import math

import pytest

from repro.bench.suite import get_benchmark
from repro.core import presets
from repro.core.pipeline import extrapolate, measure
from repro.obs.recorder import CounterSeries, TimelineRecorder
from repro.obs.samplers import (
    OnChangeSampler,
    busy_fraction_series,
    counter_points,
    step_resample,
    utilization_series,
)


def test_span_instant_counter_roundtrip():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 5.0)
    rec.span(1, "service", 2.0, 3.0)
    rec.instant(0, "mark", 4.0, tag="phase1")
    rec.counter("net.in_flight", 0.0, 1)
    rec.counter("net.in_flight", 2.0, 2)
    tl = rec.finalize(n_procs=2, end_time=5.0, program="p", params_name="q")
    assert [s.category for s in tl.spans] == ["compute", "service"]
    assert tl.spans[0].duration == 5.0
    assert tl.instants[0].args_dict() == {"tag": "phase1"}
    assert tl.counters["net.in_flight"].samples == [(0.0, 1), (2.0, 2)]
    assert tl.program == "p" and tl.params_name == "q"


def test_zero_and_negative_spans_dropped():
    rec = TimelineRecorder()
    rec.span(0, "compute", 5.0, 5.0)
    rec.span(0, "compute", 5.0, 4.0)
    assert rec.spans == []


def test_counter_dedups_unchanged_values():
    series = CounterSeries("x")
    series.sample(0.0, 1)
    series.sample(1.0, 1)  # unchanged: dropped
    series.sample(2.0, 3)
    series.sample(3.0, 1)
    assert series.samples == [(0.0, 1), (2.0, 3), (3.0, 1)]
    assert series.value_at(1.5) == 1
    assert series.value_at(2.5) == 3
    assert series.value_at(-1.0) == 0.0


def test_finalize_sorts_spans_and_instants():
    rec = TimelineRecorder()
    rec.span(1, "compute", 1.0, 2.0)
    rec.span(0, "compute", 3.0, 4.0)
    rec.instant(1, "b", 2.0)
    rec.instant(0, "a", 1.0)
    tl = rec.finalize(n_procs=2, end_time=4.0)
    assert [(s.proc, s.t0) for s in tl.spans] == [(0, 3.0), (1, 1.0)]
    assert [i.name for i in tl.instants] == ["a", "b"]


def test_category_totals_per_proc_and_global():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 2.0)
    rec.span(1, "compute", 0.0, 3.0)
    rec.span(1, "service", 3.0, 4.0)
    tl = rec.finalize(n_procs=2, end_time=4.0)
    assert tl.category_totals() == {"compute": 5.0, "service": 1.0}
    assert tl.category_totals(1) == {"compute": 3.0, "service": 1.0}
    assert "timeline" in tl.summary()


def test_on_change_sampler_forwards_with_dedup():
    rec = TimelineRecorder()
    s = OnChangeSampler(rec, "q")
    s.sample(0.0, 5)
    s.sample(1.0, 5)
    s.sample(2.0, 6)
    tl = rec.finalize(n_procs=1, end_time=2.0)
    assert tl.counters["q"].samples == [(0.0, 5), (2.0, 6)]


def test_step_resample():
    samples = [(1.0, 10.0), (3.0, 20.0)]
    assert step_resample(samples, [0.0, 1.0, 2.0, 3.0, 9.0]) == [
        0.0,
        10.0,
        10.0,
        20.0,
        20.0,
    ]


def test_busy_fraction_series_simple():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 5.0)  # first half busy
    rec.span(0, "comm_wait", 5.0, 10.0)  # waits excluded by default
    tl = rec.finalize(n_procs=1, end_time=10.0)
    series = busy_fraction_series(tl, 0, n_buckets=2)
    assert [round(v, 6) for _, v in series] == [1.0, 0.0]
    with_waits = busy_fraction_series(tl, 0, n_buckets=2, include_waits=True)
    assert [round(v, 6) for _, v in with_waits] == [1.0, 1.0]


def test_counter_points_unknown_name():
    tl = TimelineRecorder().finalize(n_procs=1, end_time=1.0)
    with pytest.raises(KeyError, match="available"):
        counter_points(tl, "nope")


@pytest.fixture(scope="module")
def grid_outcome():
    info = get_benchmark("grid")
    trace = measure(info.make_program()(8), 8, name="grid")
    return extrapolate(trace, presets.distributed_memory(), observe=True)


def test_simulated_run_records_timeline(grid_outcome):
    tl = grid_outcome.result.timeline
    assert tl is not None
    assert tl.n_procs == 8
    assert tl.end_time == grid_outcome.result.execution_time
    assert tl.spans and tl.instants and tl.counters
    # Expected series exist.
    names = tl.counter_names()
    assert "net.in_flight" in names
    assert "barriers.released" in names
    assert any(n.startswith("proc0.rxq_depth") for n in names)
    assert any(n.startswith("proc0.busy_us") for n in names)


def test_busy_span_totals_match_processor_stats(grid_outcome):
    """Acceptance: per-category busy span totals == ProcessorStats."""
    res = grid_outcome.result
    tl = res.timeline
    for p in res.processors:
        totals = tl.category_totals(p.pid)
        for cat, expected in p.categories.items():
            got = totals.get(cat, 0.0)
            assert math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-6), (
                p.pid,
                cat,
                got,
                expected,
            )


def test_wait_spans_cover_episodes(grid_outcome):
    """Wait categories record wall episodes >= the stats' net wait."""
    res = grid_outcome.result
    tl = res.timeline
    for p in res.processors:
        totals = tl.category_totals(p.pid)
        assert totals.get("comm_wait", 0.0) >= p.comm_wait - 1e-6
        assert totals.get("barrier_wait", 0.0) >= p.barrier_wait - 1e-6


def test_observation_does_not_change_results(grid_outcome):
    info = get_benchmark("grid")
    trace = measure(info.make_program()(8), 8, name="grid")
    plain = extrapolate(trace, presets.distributed_memory())
    res = grid_outcome.result
    assert plain.result.execution_time == res.execution_time
    assert plain.result.network.messages == res.network.messages
    for a, b in zip(plain.result.processors, res.processors):
        assert a.categories == b.categories
        assert a.comm_wait == b.comm_wait
        assert a.barrier_wait == b.barrier_wait


def test_utilization_series_bounded(grid_outcome):
    series = utilization_series(grid_outcome.result.timeline, n_buckets=16)
    pts = series["utilization"]
    assert len(pts) == 16
    assert all(0.0 <= v <= 1.0 for _, v in pts)
    assert any(v > 0 for _, v in pts)


def test_observe_with_interrupt_policy_matches_stats():
    """The INTERRUPT compute path records spans too."""
    info = get_benchmark("grid")
    trace = measure(info.make_program()(4), 4, name="grid")
    params = presets.distributed_memory().with_(
        processor={"policy": "interrupt"}
    )
    out = extrapolate(trace, params, observe=True)
    for p in out.result.processors:
        totals = out.result.timeline.category_totals(p.pid)
        for cat, expected in p.categories.items():
            assert math.isclose(
                totals.get(cat, 0.0), expected, rel_tol=1e-9, abs_tol=1e-6
            )
