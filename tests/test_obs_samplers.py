"""Edge cases for the derived timeline samplers.

The happy path (real simulated runs) lives in test_obs_recorder.py;
this file pins the degenerate inputs the ``extrap timeline`` CLI can
feed the samplers: empty timelines, a single span, zero-duration runs.
"""

import pytest

from repro.obs.recorder import TimelineRecorder
from repro.obs.samplers import busy_fraction_series, utilization_series


def _timeline(n_procs=1, end_time=0.0, spans=()):
    rec = TimelineRecorder()
    for proc, category, t0, t1 in spans:
        rec.span(proc, category, t0, t1)
    return rec.finalize(n_procs=n_procs, end_time=end_time)


def test_busy_fraction_empty_timeline():
    tl = _timeline(n_procs=2, end_time=10.0)
    series = busy_fraction_series(tl, 0, n_buckets=4)
    assert len(series) == 4
    assert all(v == 0.0 for _, v in series)


def test_busy_fraction_zero_duration_run():
    tl = _timeline(n_procs=1, end_time=0.0)
    assert busy_fraction_series(tl, 0, n_buckets=4) == []


def test_busy_fraction_single_span():
    tl = _timeline(end_time=10.0, spans=[(0, "compute", 2.0, 7.0)])
    series = busy_fraction_series(tl, 0, n_buckets=10)
    assert [round(v, 6) for _, v in series] == [
        0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0
    ]
    # Bucket midpoints partition [0, end].
    assert [t for t, _ in series] == [i + 0.5 for i in range(10)]


def test_busy_fraction_span_past_end_clamps():
    tl = _timeline(end_time=4.0, spans=[(0, "compute", 3.0, 9.0)])
    series = busy_fraction_series(tl, 0, n_buckets=4)
    assert all(0.0 <= v <= 1.0 for _, v in series)
    assert series[-1][1] == 1.0


def test_busy_fraction_other_proc_is_empty():
    tl = _timeline(n_procs=2, end_time=10.0, spans=[(0, "compute", 0.0, 10.0)])
    assert all(v == 0.0 for _, v in busy_fraction_series(tl, 1, n_buckets=4))


def test_busy_fraction_rejects_bad_bucket_count():
    tl = _timeline(end_time=10.0, spans=[(0, "compute", 0.0, 1.0)])
    with pytest.raises(ValueError, match="n_buckets"):
        busy_fraction_series(tl, 0, n_buckets=0)


def test_utilization_empty_timeline():
    tl = _timeline(n_procs=2, end_time=10.0)
    pts = utilization_series(tl, n_buckets=8)["utilization"]
    assert len(pts) == 8
    assert all(v == 0.0 for _, v in pts)


def test_utilization_zero_duration_run():
    tl = _timeline(n_procs=2, end_time=0.0)
    assert utilization_series(tl)["utilization"] == []


def test_utilization_no_processors():
    tl = _timeline(n_procs=0, end_time=5.0)
    assert utilization_series(tl)["utilization"] == []


def test_utilization_single_span_averages_over_fleet():
    # One of two processors fully busy -> mean utilization 0.5 everywhere.
    tl = _timeline(n_procs=2, end_time=10.0, spans=[(0, "compute", 0.0, 10.0)])
    pts = utilization_series(tl, n_buckets=4)["utilization"]
    assert [round(v, 6) for _, v in pts] == [0.5, 0.5, 0.5, 0.5]
