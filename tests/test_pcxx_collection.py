"""Collections: storage, factories, ownership plumbing."""

import pytest

from repro.pcxx import Collection, make_distribution


def test_poke_peek():
    c = Collection("c", make_distribution(4, 2), element_nbytes=8)
    c.poke(1, "v")
    assert 1 in c
    assert c.peek(1) == "v"
    assert 0 not in c


def test_factory_lazy_init():
    c = Collection(
        "c", make_distribution(4, 2), element_nbytes=8, element_factory=lambda i: i * 10
    )
    assert c.peek(3) == 30
    c.poke(3, -1)
    assert c.peek(3) == -1


def test_missing_element_without_factory():
    c = Collection("c", make_distribution(4, 2), element_nbytes=8)
    with pytest.raises(KeyError, match="no element"):
        c.peek(0)


def test_fill_and_ownership():
    c = Collection("c", make_distribution((2, 2), 4, ("block", "block")), element_nbytes=8)
    c.fill({(r, col): r * 2 + col for r in range(2) for col in range(2)})
    assert c.peek((1, 1)) == 3
    assert c.owner((0, 0)) == 0
    assert set(c.local_indices(0)) == {(0, 0)}


def test_index_validation_on_poke():
    c = Collection("c", make_distribution(4, 2), element_nbytes=8)
    with pytest.raises(IndexError):
        c.poke(99, 1)


def test_bad_element_nbytes():
    with pytest.raises(ValueError):
        Collection("c", make_distribution(4, 2), element_nbytes=0)


def test_repr():
    c = Collection("grid", make_distribution(4, 2), element_nbytes=64)
    assert "grid" in repr(c) and "64" in repr(c)
