"""Programs that violate the barrier discipline must fail loudly."""

import pytest

from repro.pcxx import TracingRuntime
from repro.threads import DeadlockError


def test_missing_barrier_participant_deadlocks():
    """A thread skipping a barrier leaves the others blocked forever —
    the scheduler detects it instead of hanging."""
    rt = TracingRuntime(3, "bad")

    def body(ctx):
        if ctx.tid != 2:  # thread 2 never joins
            yield from ctx.barrier()

    with pytest.raises(DeadlockError):
        rt.run(body)


def test_unequal_barrier_counts_deadlock():
    rt = TracingRuntime(2, "bad")

    def body(ctx):
        yield from ctx.barrier()
        if ctx.tid == 0:
            yield from ctx.barrier()  # one extra on thread 0

    with pytest.raises(DeadlockError):
        rt.run(body)


def test_exception_in_body_propagates():
    rt = TracingRuntime(2, "bad")

    def body(ctx):
        if ctx.tid == 1:
            raise RuntimeError("application bug")
        yield from ctx.compute(1)

    with pytest.raises(RuntimeError, match="application bug"):
        rt.run(body)


def test_compute_noise_validation():
    with pytest.raises(ValueError):
        TracingRuntime(2, "bad", compute_noise=1.5)
    with pytest.raises(ValueError):
        TracingRuntime(2, "bad", compute_noise=-0.1)


def test_compute_noise_reproducible_and_bounded():
    from repro.core.pipeline import measure
    from repro.pcxx import Collection, make_distribution

    def program(rt):
        def body(ctx):
            yield from ctx.compute_us(1000.0)
            yield from ctx.barrier()

        return body

    a = measure(program, 2, name="n", compute_noise=0.1, noise_seed=5)
    b = measure(program, 2, name="n", compute_noise=0.1, noise_seed=5)
    c = measure(program, 2, name="n", compute_noise=0.1, noise_seed=6)
    clean = measure(program, 2, name="n")
    assert a.events == b.events
    assert a.events != c.events
    # Each compute stays within +-10%.
    assert abs(a.duration - clean.duration) <= 0.1 * clean.duration + 1e-9
