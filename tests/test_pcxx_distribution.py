"""Distributions, including the paper's integer-sqrt (BLOCK,BLOCK) rule."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcxx.distribution import (
    Dist,
    Distribution1D,
    Distribution2D,
    make_distribution,
)


def test_dist_parse():
    assert Dist.parse("block") is Dist.BLOCK
    assert Dist.parse(" CYCLIC ") is Dist.CYCLIC
    assert Dist.parse(Dist.WHOLE) is Dist.WHOLE
    with pytest.raises(ValueError):
        Dist.parse("diagonal")


def test_block_1d():
    d = Distribution1D(10, 4, Dist.BLOCK)
    assert [d.owner(i) for i in range(10)] == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]
    assert d.local_indices(3) == [9]
    assert d.threads_used() == 4


def test_cyclic_1d():
    d = Distribution1D(10, 4, Dist.CYCLIC)
    assert [d.owner(i) for i in range(10)] == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]
    assert d.local_indices(2) == [2, 6]


def test_whole_1d():
    d = Distribution1D(5, 4, Dist.WHOLE)
    assert all(d.owner(i) == 0 for i in range(5))
    assert d.local_indices(0) == list(range(5))
    assert d.local_indices(1) == []
    assert d.threads_used() == 1


def test_1d_bounds():
    d = Distribution1D(4, 2)
    with pytest.raises(IndexError):
        d.owner(4)
    with pytest.raises(IndexError):
        d.local_indices(2)


def test_block_block_integer_sqrt_rule():
    """The §4.1 artifact: N=8 uses a 2x2 grid — 4 threads idle."""
    d = Distribution2D(8, 8, 8, Dist.BLOCK, Dist.BLOCK)
    assert d.grid_shape == (2, 2)
    assert d.threads_used() == 4
    assert d.local_indices(4) == []
    assert d.local_indices(7) == []
    # And the same data on 4 threads is distributed identically.
    d4 = Distribution2D(8, 8, 4, Dist.BLOCK, Dist.BLOCK)
    for t in range(4):
        assert d.local_indices(t) == d4.local_indices(t)


def test_block_block_perfect_square():
    d = Distribution2D(8, 8, 16, Dist.BLOCK, Dist.BLOCK)
    assert d.grid_shape == (4, 4)
    assert d.threads_used() == 16
    assert d.owner((0, 0)) == 0
    assert d.owner((7, 7)) == 15


def test_n2_collapses_to_one_thread():
    # isqrt(2) == 1: the same artifact at two threads (documented).
    d = Distribution2D(4, 4, 2, Dist.BLOCK, Dist.BLOCK)
    assert d.grid_shape == (1, 1)
    assert d.threads_used() == 1


def test_whole_dimension_collapses_grid():
    d = Distribution2D(6, 6, 4, Dist.BLOCK, Dist.WHOLE)
    assert d.grid_shape == (4, 1)
    # ceil-blocks of 2 rows: thread 3 is left empty (6 = 2+2+2).
    assert {d.owner((r, 0)) for r in range(6)} == {0, 1, 2}
    d8 = Distribution2D(8, 8, 4, Dist.BLOCK, Dist.WHOLE)
    assert {d8.owner((r, 0)) for r in range(8)} == {0, 1, 2, 3}
    d2 = Distribution2D(6, 6, 4, Dist.WHOLE, Dist.CYCLIC)
    assert d2.grid_shape == (1, 4)
    assert {d2.owner((0, c)) for c in range(6)} == {0, 1, 2, 3}


def test_whole_whole():
    d = Distribution2D(3, 3, 8, Dist.WHOLE, Dist.WHOLE)
    assert d.threads_used() == 1
    assert len(d.local_indices(0)) == 9


def test_make_distribution():
    d1 = make_distribution(10, 4, "cyclic")
    assert isinstance(d1, Distribution1D)
    d2 = make_distribution((4, 4), 4, ("block", "whole"))
    assert isinstance(d2, Distribution2D)
    with pytest.raises(ValueError):
        make_distribution((2, 2, 2), 4)
    with pytest.raises(ValueError):
        make_distribution((4, 4), 4, ("block",))


dims = st.sampled_from([Dist.BLOCK, Dist.CYCLIC, Dist.WHOLE])


@settings(max_examples=100, deadline=None)
@given(
    size=st.integers(1, 60),
    n=st.integers(1, 33),
    attr=dims,
)
def test_1d_partition_property(size, n, attr):
    """Property: local_indices partitions the index space and matches owner."""
    d = Distribution1D(size, n, attr)
    seen = []
    for t in range(n):
        for i in d.local_indices(t):
            assert d.owner(i) == t
            seen.append(i)
    assert sorted(seen) == list(range(size))


@settings(max_examples=100, deadline=None)
@given(
    rows=st.integers(1, 12),
    cols=st.integers(1, 12),
    n=st.integers(1, 33),
    ra=dims,
    ca=dims,
)
def test_2d_partition_property(rows, cols, n, ra, ca):
    """Property: the 2-D distribution partitions the index space."""
    d = Distribution2D(rows, cols, n, ra, ca)
    seen = []
    for t in range(n):
        for idx in d.local_indices(t):
            assert d.owner(idx) == t
            seen.append(idx)
    assert sorted(seen) == [(r, c) for r in range(rows) for c in range(cols)]
