"""Parallel method invocation (the pC++ object-parallel shape)."""

import numpy as np
import pytest

from repro.pcxx import Collection, TracingRuntime, make_distribution
from repro.pcxx.invoke import parallel_invoke, parallel_reduce
from repro.trace.events import EventKind
from repro.trace.validate import validate_trace


def setup(n, size=8):
    rt = TracingRuntime(n, "inv")
    coll = Collection("c", make_distribution(size, n, "block"), element_nbytes=8)
    for i in range(size):
        coll.poke(i, float(i))
    return rt, coll


def test_plain_method_applied_to_local_elements():
    rt, coll = setup(4)
    counts = {}

    def body(ctx):
        def double(ctx_, coll_, index, element):
            return element * 2

        counts[ctx.tid] = yield from parallel_invoke(
            ctx, coll, double, flops_per_element=3
        )

    trace = rt.run(body)
    validate_trace(trace)
    assert sum(counts.values()) == 8
    assert [coll.peek(i) for i in range(8)] == [i * 2 for i in range(8)]
    # The compiler barrier: exactly one global episode.
    assert trace.barrier_count() == 1


def test_generator_method_can_read_remotely():
    rt, coll = setup(4)

    def body(ctx):
        def add_right(ctx_, coll_, index, element):
            right = yield from ctx_.get(
                coll_, (index + 1) % 8, nbytes=8
            )
            return element + right

        yield from parallel_invoke(ctx, coll, add_right)

    trace = rt.run(body)
    reads = [e for e in trace.events if e.kind == EventKind.REMOTE_READ]
    assert reads  # boundary elements read across owners
    # values: old[i] + old[i+1 mod 8]... but in-place update order matters;
    # each thread reads current values — cross-owner reads see originals
    # because all owners update after... not guaranteed; just check type.
    assert all(isinstance(coll.peek(i), float) for i in range(8))


def test_none_return_keeps_element():
    rt, coll = setup(2)

    def body(ctx):
        def inspect_only(ctx_, coll_, index, element):
            return None

        yield from parallel_invoke(ctx, coll, inspect_only)

    rt.run(body)
    assert [coll.peek(i) for i in range(8)] == [float(i) for i in range(8)]


def test_idle_threads_still_take_the_barrier():
    # 2 elements over 4 threads: threads 2..3 own nothing.
    rt = TracingRuntime(4, "inv")
    coll = Collection("c", make_distribution(2, 4, "block"), element_nbytes=8)
    coll.poke(0, 1.0)
    coll.poke(1, 2.0)
    done = {}

    def body(ctx):
        done[ctx.tid] = yield from parallel_invoke(
            ctx, coll, lambda c_, co_, i, e: e + 1
        )

    trace = rt.run(body)
    validate_trace(trace)  # global barrier => all 4 threads entered
    assert done == {0: 1, 1: 1, 2: 0, 3: 0}


def test_no_barrier_mode():
    rt, coll = setup(2)

    def body(ctx):
        yield from parallel_invoke(
            ctx, coll, lambda c_, co_, i, e: e, barrier=False
        )
        yield from ctx.barrier()  # caller-controlled fusion

    trace = rt.run(body)
    assert trace.barrier_count() == 1


def test_negative_flops_rejected():
    rt, coll = setup(2)

    def body(ctx):
        with pytest.raises(ValueError):
            yield from parallel_invoke(
                ctx, coll, lambda c_, co_, i, e: e, flops_per_element=-1
            )
        yield from ctx.barrier()

    rt.run(body)


def test_parallel_reduce():
    n = 4
    rt, coll = setup(n)
    scratch = Collection("s", make_distribution(n, n, "block"), element_nbytes=8)
    results = {}

    def body(ctx):
        results[ctx.tid] = yield from parallel_reduce(
            ctx,
            coll,
            lambda index, element: element,
            scratch,
            lambda a, b: a + b,
        )

    rt.run(body)
    assert results[0] == sum(range(8))
