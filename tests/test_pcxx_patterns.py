"""Communication patterns used by the benchmarks."""

import numpy as np
import pytest

from repro.pcxx import Collection, TracingRuntime, make_distribution
from repro.pcxx.patterns import (
    all_reduce_via_root,
    bcast,
    reduce_linear,
    reduce_tree,
    shift,
)
from repro.trace.validate import validate_trace


def per_thread_coll(n):
    c = Collection("v", make_distribution(n, n, "block"), element_nbytes=8)
    for i in range(n):
        c.poke(i, float(i + 1))
    return c


@pytest.mark.parametrize("n", [1, 2, 4, 5, 8])
def test_reduce_tree_sum(n):
    rt = TracingRuntime(n, "p")
    coll = per_thread_coll(n)
    results = {}

    def body(ctx):
        total = yield from reduce_tree(ctx, coll, lambda a, b: a + b)
        results[ctx.tid] = total

    validate_trace(rt.run(body))
    assert results[0] == sum(range(1, n + 1))


@pytest.mark.parametrize("n", [1, 2, 3, 4, 8])
def test_reduce_linear_sum(n):
    rt = TracingRuntime(n, "p")
    coll = per_thread_coll(n)
    results = {}

    def body(ctx):
        total = yield from reduce_linear(ctx, coll, lambda a, b: a + b)
        results[ctx.tid] = total

    validate_trace(rt.run(body))
    assert results[0] == sum(range(1, n + 1))


@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_all_reduce_everyone_gets_total(n):
    rt = TracingRuntime(n, "p")
    coll = per_thread_coll(n)
    results = {}

    def body(ctx):
        total = yield from all_reduce_via_root(ctx, coll, lambda a, b: a + b)
        results[ctx.tid] = total

    validate_trace(rt.run(body))
    assert set(results.values()) == {sum(range(1, n + 1))}
    assert len(results) == n


def test_bcast():
    n = 4
    rt = TracingRuntime(n, "p")
    coll = per_thread_coll(n)
    results = {}

    def body(ctx):
        v = yield from bcast(ctx, coll, root=2)
        results[ctx.tid] = v

    validate_trace(rt.run(body))
    assert set(results.values()) == {3.0}


def test_shift():
    n = 4
    rt = TracingRuntime(n, "p")
    coll = per_thread_coll(n)
    results = {}

    def body(ctx):
        v = yield from shift(ctx, coll, offset=1)
        results[ctx.tid] = v

    validate_trace(rt.run(body))
    assert results == {0: 2.0, 1: 3.0, 2: 4.0, 3: 1.0}


def test_reduce_tree_is_log_depth_in_barriers():
    n = 8
    rt = TracingRuntime(n, "p")
    coll = per_thread_coll(n)

    def body(ctx):
        yield from reduce_tree(ctx, coll, lambda a, b: a + b)

    trace = rt.run(body)
    # log2(8) + 1 = 4 barrier episodes.
    assert trace.barrier_count() == 4
