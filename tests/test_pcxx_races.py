"""The §5 extrapolation-safety (race) checker."""

import pytest

from repro.core.pipeline import measure
from repro.pcxx import Collection, TracingRuntime, make_distribution
from repro.pcxx.races import RaceChecker, RaceFinding


def make_coll(n):
    c = Collection("c", make_distribution(n, n, "block"), element_nbytes=8)
    for i in range(n):
        c.poke(i, float(i))
    return c


def test_checker_detects_both_orders():
    rc = RaceChecker()
    rc.on_write(0, "c", 1, thread=1)
    rc.on_remote_read(0, "c", 1, thread=0)  # read after write
    rc.on_remote_read(1, "c", 2, thread=0)
    rc.on_write(1, "c", 2, thread=2)  # write after read
    assert len(rc.findings) == 2
    assert rc.findings[0].epoch == 0 and rc.findings[0].reader == 0
    assert rc.findings[1].epoch == 1 and rc.findings[1].writer == 2
    assert "hazards" in rc.report()


def test_checker_ignores_barrier_separated_access():
    rc = RaceChecker()
    rc.on_write(0, "c", 1, thread=1)
    rc.on_remote_read(1, "c", 1, thread=0)  # next epoch: safe
    assert rc.findings == []
    assert "extrapolation-safe" in rc.report()


def test_checker_deduplicates():
    rc = RaceChecker()
    rc.on_write(0, "c", 1, thread=1)
    rc.on_remote_read(0, "c", 1, thread=0)
    rc.on_remote_read(0, "c", 1, thread=0)
    assert len(rc.findings) == 1


def test_disciplined_program_is_safe():
    """Read phase / barrier / write phase: no findings."""
    n = 4
    rt = TracingRuntime(n, "safe")
    coll = make_coll(n)

    def body(ctx):
        for _ in range(3):
            v = yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
            yield from ctx.barrier()
            yield from ctx.put(coll, ctx.tid, v + 1.0)
            yield from ctx.barrier()

    trace = rt.run(body)
    assert trace.race_findings == []
    assert rt.races.findings == []


def test_racy_program_is_flagged():
    """Write and remote read of the same element in one epoch."""
    n = 2
    rt = TracingRuntime(n, "racy")
    coll = make_coll(n)

    def body(ctx):
        if ctx.tid == 0:
            yield from ctx.put(coll, 0, 42.0)  # owner writes ...
        else:
            yield from ctx.get(coll, 0, nbytes=8)  # ... while 1 reads
        yield from ctx.barrier()

    trace = rt.run(body)
    assert len(trace.race_findings) == 1
    f = trace.race_findings[0]
    assert isinstance(f, RaceFinding)
    assert f.writer == 0 and f.reader == 1 and f.index == 0
    assert "depends on execution timing" in f.describe()


def test_remote_write_also_flagged():
    n = 2
    rt = TracingRuntime(n, "racy")
    coll = make_coll(n)

    def body(ctx):
        if ctx.tid == 0:
            yield from ctx.put(coll, 1, -1.0)  # remote write to 1's element
        else:
            yield from ctx.get(coll, 0, nbytes=8)
            # thread 1 reads its own element locally: no event, and local
            # reads of own data are not remote reads — but thread 0's
            # *write* to element 1 races with nothing here.
        yield from ctx.barrier()

    trace = rt.run(body)
    assert trace.race_findings == []  # no same-element read


def test_double_buffered_benchmarks_are_safe():
    """The whole suite follows the discipline (per DESIGN.md)."""
    from repro.bench.grid import GridConfig, make_program as grid_prog
    from repro.bench.cyclic import CyclicConfig, make_program as cyclic_prog
    from repro.bench.sort import SortConfig, make_program as sort_prog

    for maker, n in (
        (grid_prog(GridConfig(patch_rows=2, patch_cols=2, m=4, iterations=2)), 4),
        (cyclic_prog(CyclicConfig(system_size=256)), 4),
        (sort_prog(SortConfig(total_keys=64)), 4),
    ):
        trace = measure(maker(n), n, name="suite")
        assert trace.race_findings == [], trace.race_findings[:3]
