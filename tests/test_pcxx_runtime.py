"""The tracing runtime: event recording, clocks, barrier semantics."""

import pytest

from repro.pcxx import Collection, TracingRuntime, make_distribution
from repro.trace.events import EventKind
from repro.trace.validate import validate_trace

E = EventKind


def make_coll(n, nbytes=64):
    c = Collection("c", make_distribution(n, n, "block"), element_nbytes=nbytes)
    for i in range(n):
        c.poke(i, float(i))
    return c


def events_of(trace, kind):
    return [e for e in trace.events if e.kind == kind]


def test_compute_advances_at_mflops_rate():
    rt = TracingRuntime(1, "t", trace_mflops=2.0)
    coll = make_coll(1)

    def body(ctx):
        yield from ctx.compute(100)  # 100 flops at 2 MFLOPS = 50 us
        assert ctx.now == pytest.approx(50.0)
        yield from ctx.compute_us(10.0)
        assert ctx.now == pytest.approx(60.0)

    rt.run(body)


def test_remote_read_records_owner_and_size():
    rt = TracingRuntime(2, "t")
    coll = make_coll(2, nbytes=640)

    def body(ctx):
        v = yield from ctx.get(coll, 1 - ctx.tid, nbytes=8)
        assert v == float(1 - ctx.tid)
        yield from ctx.barrier()

    trace = rt.run(body)
    reads = events_of(trace, E.REMOTE_READ)
    assert len(reads) == 2
    # compiler size mode records the whole element size.
    assert all(r.nbytes == 640 for r in reads)
    assert {(r.thread, r.owner) for r in reads} == {(0, 1), (1, 0)}


def test_actual_size_mode():
    rt = TracingRuntime(2, "t", size_mode="actual")
    coll = make_coll(2, nbytes=640)

    def body(ctx):
        yield from ctx.get(coll, 1 - ctx.tid, nbytes=8)
        yield from ctx.get(coll, 1 - ctx.tid)  # no actual size -> element size
        yield from ctx.barrier()

    trace = rt.run(body)
    sizes = sorted(r.nbytes for r in events_of(trace, E.REMOTE_READ))
    assert sizes == [8, 8, 640, 640]


def test_local_access_records_nothing():
    rt = TracingRuntime(2, "t")
    coll = make_coll(2)

    def body(ctx):
        yield from ctx.get(coll, ctx.tid)
        yield from ctx.put(coll, ctx.tid, 99.0)
        yield from ctx.barrier()

    trace = rt.run(body)
    assert not events_of(trace, E.REMOTE_READ)
    assert not events_of(trace, E.REMOTE_WRITE)


def test_remote_write_recorded():
    rt = TracingRuntime(2, "t")
    coll = make_coll(2)

    def body(ctx):
        if ctx.tid == 0:
            yield from ctx.put(coll, 1, -1.0)
        yield from ctx.barrier()

    trace = rt.run(body)
    writes = events_of(trace, E.REMOTE_WRITE)
    assert len(writes) == 1 and writes[0].owner == 1
    assert coll.peek(1) == -1.0


def test_barrier_exit_after_last_entry():
    rt = TracingRuntime(3, "t")

    def body(ctx):
        yield from ctx.compute((ctx.tid + 1) * 1.136)  # 1, 2, 3 us
        yield from ctx.barrier()

    trace = rt.run(body)
    enters = events_of(trace, E.BARRIER_ENTER)
    exits = events_of(trace, E.BARRIER_EXIT)
    assert len(enters) == 3 and len(exits) == 3
    last_entry = max(e.time for e in enters)
    assert all(x.time >= last_entry for x in exits)


def test_barrier_ids_sequential():
    rt = TracingRuntime(2, "t")

    def body(ctx):
        for _ in range(3):
            yield from ctx.barrier()

    trace = rt.run(body)
    ids = sorted({e.barrier_id for e in events_of(trace, E.BARRIER_ENTER)})
    assert ids == [0, 1, 2]
    validate_trace(trace)


def test_event_overhead_charged():
    rt = TracingRuntime(1, "t", event_overhead=5.0)

    def body(ctx):
        yield from ctx.mark("a")
        yield from ctx.mark("b")

    trace = rt.run(body)
    # THREAD_BEGIN at 0, each record charges 5 afterwards; THREAD_END last.
    times = [e.time for e in trace.events]
    assert times == [0.0, 5.0, 10.0, 15.0]


def test_distinct_bodies_per_thread():
    rt = TracingRuntime(2, "t")
    log = []

    def body_a(ctx):
        log.append("a")
        yield from ctx.barrier()

    def body_b(ctx):
        log.append("b")
        yield from ctx.barrier()

    rt.run([body_a, body_b])
    assert sorted(log) == ["a", "b"]


def test_run_twice_rejected():
    rt = TracingRuntime(1, "t")

    def body(ctx):
        return
        yield

    rt.run(body)
    with pytest.raises(RuntimeError):
        rt.run(body)


def test_wrong_body_count_rejected():
    rt = TracingRuntime(3, "t")
    with pytest.raises(ValueError):
        rt.run([lambda ctx: iter(())] * 2)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_threads": 0},
        {"n_threads": 1, "trace_mflops": 0},
        {"n_threads": 1, "size_mode": "weird"},
        {"n_threads": 1, "event_overhead": -1},
    ],
)
def test_constructor_validation(kwargs):
    with pytest.raises(ValueError):
        TracingRuntime(**{"program": "t", **kwargs})


def test_trace_validates_for_many_threads():
    rt = TracingRuntime(8, "t")
    coll = make_coll(8)

    def body(ctx):
        for it in range(2):
            yield from ctx.compute(50)
            yield from ctx.get(coll, (ctx.tid + it + 1) % 8, nbytes=8)
            yield from ctx.barrier()

    validate_trace(rt.run(body))
