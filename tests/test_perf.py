"""The repro.perf instrumentation layer: counters, timers, profiles, bench."""

import json

import pytest

from repro.des import Environment
from repro.perf import EngineCounters, PhaseTimer, SimulationProfile
from repro.perf.bench import (
    WORKLOADS,
    format_results,
    load_baseline,
    run_benchmarks,
    write_baseline,
)


def test_counters_count_and_serialize():
    c = EngineCounters()
    env = Environment()
    ev = env.timeout(1)
    c.count(ev)
    c.count(ev)
    c.count(env.event())
    assert c.events_total == 3
    assert c.events_by_type == {"Timeout": 2, "Event": 1}
    d = c.as_dict()
    assert d["events_total"] == 3
    json.dumps(d)  # must be serialisable
    assert "Timeout" in c.format()


def test_phase_timer_accumulates_wall_and_sim_time():
    env = Environment()
    timer = PhaseTimer(env)
    with timer.phase("replay"):
        env.timeout(250.0)
        env.run(None)
    with timer.phase("replay"):
        env.timeout(250.0)
        env.run(None)
    rec = timer.phases["replay"]
    assert rec.count == 2
    assert rec.sim_us == pytest.approx(500.0)
    assert rec.wall_s >= 0.0
    assert timer.total_wall_s == rec.wall_s
    assert "replay" in timer.format()
    json.dumps(timer.as_dict())


def test_phase_timer_without_env():
    timer = PhaseTimer()
    with timer.phase("setup"):
        pass
    assert timer.phases["setup"].sim_us == 0.0


def test_simulation_profile_export():
    p = SimulationProfile()
    assert p.events_per_second is None
    p.counters.events_total = 1000
    p.wall_time_s = 0.5
    p.sim_time_us = 123.0
    assert p.events_per_second == pytest.approx(2000.0)
    d = p.as_dict()
    assert d["events_per_second"] == pytest.approx(2000.0)
    json.dumps(d)
    assert "simulation profile" in p.format()


def test_bench_workloads_are_deterministic():
    """Every reference workload must produce a stable event count."""
    for name, (fn, size) in WORKLOADS.items():
        small = 8 if name in ("simulator", "serve") else 50
        first, second = fn(small), fn(small)
        if isinstance(first, dict):
            # Wall-clock extras (latencies) legitimately vary; the event
            # count and cache behaviour must not.
            assert first["events"] == second["events"], name
            assert first.get("cache_hit_rate") == second.get(
                "cache_hit_rate"
            ), name
        else:
            assert first == second, name


def test_run_benchmarks_and_baseline_roundtrip(tmp_path):
    results = run_benchmarks(scale=0.01, repeats=1, workloads=["timeout_chain"])
    wl = results["workloads"]["timeout_chain"]
    assert wl["events"] > 0
    assert wl["events_per_s"] is None or wl["events_per_s"] > 0
    path = write_baseline(results, tmp_path / "BENCH_engine.json")
    back = load_baseline(path)
    assert back["workloads"]["timeout_chain"]["events"] == wl["events"]
    text = format_results(results, back)
    assert "timeout_chain" in text and "1.00x baseline" in text


def test_load_baseline_rejects_bad_schema(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps({"schema": 999, "workloads": {}}))
    with pytest.raises(ValueError, match="schema"):
        load_baseline(path)


def test_run_benchmarks_rejects_bad_repeats():
    with pytest.raises(ValueError):
        run_benchmarks(repeats=0)


def test_simulate_profile_flag():
    """simulate(profile=True) attaches a complete profile."""
    from repro.core import presets
    from repro.core.pipeline import measure
    from repro.core.translation import translate
    from repro.pcxx import Collection, make_distribution
    from repro.sim.simulator import simulate

    def program(rt):
        n = rt.n_threads
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=8)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            yield from ctx.compute_us(50.0)
            yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
            yield from ctx.barrier()

        return body

    tp = translate(measure(program, 4, name="p"))
    plain = simulate(tp, presets.distributed_memory())
    profiled = simulate(tp, presets.distributed_memory(), profile=True)
    assert plain.profile is None
    assert profiled.profile is not None
    assert profiled.execution_time == plain.execution_time
    assert profiled.profile.counters.events_total > 0
    assert profiled.profile.wall_time_s > 0
    assert profiled.profile.sim_time_us >= profiled.execution_time
    # The profile block renders into the debugging report.
    from repro.metrics.report import profile_section

    assert "engine counters" in profile_section(profiled)
    assert profile_section(plain) == ""
