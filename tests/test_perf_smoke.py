"""Perf smoke: the engine must stay within 2x of the committed baseline.

Runs the engine-throughput workloads at reduced scale and compares
events/second against the committed ``BENCH_engine.json`` trajectory
(regenerate with ``extrap bench -o BENCH_engine.json``).  Deselect with
``-m "not perf"`` on constrained machines, or set
``EXTRAP_SKIP_PERF=1``.
"""

import os
from pathlib import Path

import pytest

from repro.perf.bench import load_baseline, run_benchmarks

pytestmark = pytest.mark.perf

BASELINE_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

#: Tolerated slowdown vs. the committed baseline.  Generous on purpose:
#: the smoke test exists to catch engine-level regressions (an
#: accidental O(n^2), a dropped fast path), not machine-to-machine noise.
MAX_REGRESSION = 2.0


@pytest.fixture(scope="module")
def baseline():
    if os.environ.get("EXTRAP_SKIP_PERF") == "1":
        pytest.skip("EXTRAP_SKIP_PERF=1")
    if not BASELINE_PATH.exists():
        pytest.skip(f"no committed baseline at {BASELINE_PATH}")
    return load_baseline(BASELINE_PATH)


def test_engine_throughput_no_regression(baseline):
    results = run_benchmarks(scale=0.2, repeats=3)
    failures = []
    for name, current in results["workloads"].items():
        ref = baseline["workloads"].get(name)
        if ref is None or not ref.get("events_per_s"):
            continue
        rate, ref_rate = current["events_per_s"], ref["events_per_s"]
        if rate < ref_rate / MAX_REGRESSION:
            failures.append(
                f"{name}: {rate:,.0f} events/s vs baseline "
                f"{ref_rate:,.0f} ({ref_rate / rate:.2f}x slower)"
            )
    assert not failures, "engine throughput regressed:\n" + "\n".join(failures)
