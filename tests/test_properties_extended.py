"""Extended property-based tests across subsystems."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import presets
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.machine import MachineSpec, run_on_machine
from repro.pcxx import Collection, make_distribution
from repro.sim.multithread import assign_threads, simulate_multithreaded
from repro.sim.simulator import simulate


def random_program(n, barriers, reads, work_seed):
    """A deterministic pseudo-random but extrapolatable program."""

    def factory(rt):
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=32)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            for b in range(barriers):
                w = ((ctx.tid * 37 + b * work_seed) % 13 + 1) * 20.0
                yield from ctx.compute_us(w)
                for r in range(reads):
                    if n > 1:
                        target = (ctx.tid + r + b + 1) % n
                        if target != ctx.tid:
                            yield from ctx.get(coll, target, nbytes=8)
                yield from ctx.barrier()

        return body

    return factory


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(2, 8),
    barriers=st.integers(1, 4),
    reads=st.integers(0, 3),
    seed=st.integers(0, 100),
    m=st.integers(1, 8),
    scheme=st.sampled_from(["block", "cyclic"]),
)
def test_multithread_invariants(n, barriers, reads, seed, m, scheme):
    """For any program and any m <= n:

    * the run terminates with all threads finished;
    * execution time is at least the longest thread's compute;
    * total served+local requests equals total issued reads.
    """
    if m > n:
        m = n
    tp = translate(measure(random_program(n, barriers, reads, seed), n, name="r"))
    res = simulate_multithreaded(
        tp, presets.distributed_memory(), m, assignment_scheme=scheme
    )
    assert len(res.thread_end_times) == n
    assert res.execution_time == max(res.thread_end_times)
    per_thread_compute = [sum(tt.compute_deltas()) for tt in tp.threads]
    assert res.execution_time >= max(per_thread_compute) - 1e-6
    issued = sum(
        1
        for tt in tp.threads
        for e in tt.events
        if e.kind.name in ("REMOTE_READ", "REMOTE_WRITE")
    )
    handled = sum(
        p.requests_served + p.local_requests for p in res.processors
    )
    assert handled == issued


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(1, 8),
    barriers=st.integers(1, 3),
    seed=st.integers(0, 100),
)
def test_single_thread_model_vs_ideal_bound(n, barriers, seed):
    """Ideal-environment simulation equals translation's ideal time for
    arbitrary programs (the pipeline's central consistency invariant)."""
    tp = translate(measure(random_program(n, barriers, 1, seed), n, name="r"))
    res = simulate(tp, presets.ideal())
    assert res.execution_time == pytest.approx(tp.ideal_execution_time())


@settings(max_examples=10, deadline=None)
@given(
    byte_time=st.floats(min_value=0.001, max_value=0.5),
    startup=st.floats(min_value=0.0, max_value=100.0),
    service=st.floats(min_value=0.0, max_value=20.0),
)
def test_machine_time_monotone_in_costs(byte_time, startup, service):
    """The reference machine's time never decreases when any cost grows."""
    base = MachineSpec()
    slower = MachineSpec(
        byte_time=base.byte_time + byte_time,
        msg_startup=base.msg_startup + startup,
        service_time=base.service_time + service,
    )
    prog = random_program(4, 2, 2, 7)
    t_base = run_on_machine(prog, 4, spec=base, name="r").execution_time
    t_slow = run_on_machine(prog, 4, spec=slower, name="r").execution_time
    assert t_slow >= t_base - 1e-6


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 64), m=st.integers(1, 64), scheme=st.sampled_from(["block", "cyclic"]))
def test_assignment_is_total_and_balanced(n, m, scheme):
    if m > n:
        with pytest.raises(ValueError):
            assign_threads(n, m, scheme)
        return
    a = assign_threads(n, m, scheme)
    assert len(a) == n
    assert set(a) <= set(range(m))
    counts = [a.count(p) for p in range(m)]
    assert max(counts) - min(counts) <= -(-n // m)  # near-even
