"""The README and package-docstring examples must actually run."""


def test_readme_quickstart():
    from repro import extrapolate, measure, presets
    from repro.bench.grid import GridConfig, make_program

    maker = make_program(GridConfig(patch_rows=2, patch_cols=2, m=4, iterations=2))
    trace = measure(maker(8), 8, name="grid")
    outcome = extrapolate(trace, presets.cm5())
    assert outcome.predicted_time >= outcome.ideal_time > 0
    assert "grid" in outcome.result.summary()


def test_package_docstring_example():
    import repro

    # The module docstring's example, executed.
    from repro import extrapolate, measure, presets
    from repro.bench.grid import GridConfig, make_program

    maker = make_program(GridConfig(patch_rows=2, patch_cols=2, m=4, iterations=2))
    trace = measure(maker(4), 4, name="grid")
    outcome = extrapolate(trace, presets.cm5())
    assert outcome.predicted_time > 0
    assert repro.__version__


def test_all_public_names_importable():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_tutorial_program_shape():
    """The docs/TUTORIAL.md program runs as written (scaled down)."""
    from repro import measure
    from repro.pcxx import Collection, make_distribution

    def my_program(rt):
        n = rt.n_threads
        seg = Collection(
            "seg", make_distribution(n, n, "block"), element_nbytes=1024
        )
        for t in range(n):
            seg.poke(t, [0.0] * 128)

        def body(ctx):
            for step in range(3):
                yield from ctx.compute(2000)
                if n > 1:
                    yield from ctx.get(seg, (ctx.tid + 1) % n, nbytes=64)
                yield from ctx.barrier()

        return body

    trace = measure(my_program, 8, name="mine")
    assert trace.barrier_count() == 3
    assert trace.race_findings == []
