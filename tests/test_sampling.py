"""repro.sampling: interval splitting, clustering, sampled estimation."""

import json

import pytest

from repro import measure
from repro.bench.suite import get_benchmark
from repro.core.presets import by_name
from repro.experiments.paramsets import matmul_config
from repro.sampling import (
    SamplingConfig,
    build_plan,
    estimate_sampled,
    sample_report,
    split_file,
    split_trace,
)
from repro.trace.events import EventKind, TraceEvent
from repro.trace.io import write_trace
from repro.trace.trace import Trace, TraceMeta


def barrier_trace(n_epochs=6, n_threads=2, nbytes=64):
    """A hand-built trace: n_epochs compute+barrier episodes."""
    events = []
    t = 0.0
    for th in range(n_threads):
        events.append(TraceEvent(t, th, EventKind.THREAD_BEGIN))
    for epoch in range(n_epochs):
        for th in range(n_threads):
            t += 1.0
            events.append(
                TraceEvent(
                    t,
                    th,
                    EventKind.REMOTE_READ,
                    owner=(th + 1) % n_threads,
                    nbytes=nbytes * (1 + epoch % 2),
                )
            )
        for th in range(n_threads):
            t += 1.0
            events.append(TraceEvent(t, th, EventKind.BARRIER_ENTER, barrier_id=epoch))
        for th in range(n_threads):
            t += 1.0
            events.append(TraceEvent(t, th, EventKind.BARRIER_EXIT, barrier_id=epoch))
    for th in range(n_threads):
        t += 1.0
        events.append(TraceEvent(t, th, EventKind.THREAD_END))
    events.sort(key=lambda e: e.time)
    return Trace(TraceMeta(program="synthetic", n_threads=n_threads), events)


def matmul_trace(n=4):
    maker = get_benchmark("matmul").make_program(matmul_config(quick=True))
    return measure(maker(n), n, name="matmul")


# -- interval splitting ------------------------------------------------------


def test_barrier_split_epochs():
    tr = barrier_trace(n_epochs=6)
    split = split_trace(tr, SamplingConfig(mode="barrier"))
    assert split.mode == "barrier"
    # 6 barrier-closed intervals plus the trailing THREAD_END interval.
    assert split.n_intervals == 7
    assert split.events_total == len(tr.events)
    assert sum(iv.n_events for iv in split.intervals) == len(tr.events)
    # Every barrier-closed interval ends on a BARRIER_EXIT.
    for iv in split.intervals[:-1]:
        assert iv.events[-1].kind is EventKind.BARRIER_EXIT


def test_events_mode_fixed_chunks():
    tr = barrier_trace(n_epochs=8)
    split = split_trace(tr, SamplingConfig(mode="events", interval_events=10))
    assert split.mode == "events"
    assert split.interval_events == 10
    assert split.events_total == len(tr.events)
    # Chunks never cut while a barrier episode is open, so sizes may
    # run over the nominal chunk — but every event lands in exactly one
    # interval.
    assert sum(iv.n_events for iv in split.intervals) == len(tr.events)
    assert split.n_intervals > 1


def test_auto_falls_back_without_barriers():
    events = [TraceEvent(0.0, 0, EventKind.THREAD_BEGIN)]
    events += [
        TraceEvent(1.0 + i, 0, EventKind.REMOTE_READ, owner=0, nbytes=8)
        for i in range(40)
    ]
    events.append(TraceEvent(99.0, 0, EventKind.THREAD_END))
    tr = Trace(TraceMeta(program="nb", n_threads=1), events)
    split = split_trace(tr, SamplingConfig(mode="auto", interval_events=10))
    assert split.mode == "events"
    assert split.n_intervals > 1


def test_prev_times_track_leading_gap():
    tr = barrier_trace(n_epochs=3)
    split = split_trace(tr, SamplingConfig(mode="barrier"))
    later = split.intervals[1]
    # Every thread active in interval 1 has a previous-event time from
    # interval 0, strictly before its first event here.
    assert later.prev_times
    for thread, prev in later.prev_times.items():
        mine = [e.time for e in later.events if e.thread == thread]
        assert prev < min(mine)


def test_split_file_matches_in_memory(tmp_path):
    tr = matmul_trace(4)
    cfg = SamplingConfig()
    in_mem = split_trace(tr, cfg, keep_events=False)
    path = write_trace(tr, tmp_path / "m.jsonl.gz")
    meta, streamed = split_file(path, cfg)
    assert meta.to_dict() == tr.meta.to_dict()
    assert streamed.mode == in_mem.mode
    assert [iv.signature for iv in streamed.intervals] == [
        iv.signature for iv in in_mem.intervals
    ]


# -- clustering --------------------------------------------------------------


def test_plan_deterministic_for_seed():
    tr = matmul_trace(4)
    split = split_trace(tr, SamplingConfig())
    a = build_plan(split, SamplingConfig(seed=3))
    b = build_plan(split, SamplingConfig(seed=3))
    assert a.to_dict() == b.to_dict()


def test_plan_weights_cover_all_intervals():
    tr = matmul_trace(4)
    split = split_trace(tr, SamplingConfig())
    plan = build_plan(split, SamplingConfig())
    assert sum(c.weight for c in plan.clusters) == split.n_intervals
    assert 1 <= plan.k <= 8
    reps = {c.representative for c in plan.clusters}
    assert len(reps) == plan.k  # distinct representatives


def test_fewer_intervals_than_max_phases():
    tr = barrier_trace(n_epochs=2)  # 3 intervals
    split = split_trace(tr, SamplingConfig())
    plan = build_plan(split, SamplingConfig(max_phases=8))
    assert plan.k <= split.n_intervals


# -- estimation --------------------------------------------------------------


def test_zero_event_trace_rejected():
    tr = Trace(TraceMeta(program="empty", n_threads=1), [])
    with pytest.raises(ValueError, match="empty"):
        estimate_sampled(tr, by_name("cm5"), SamplingConfig())


def test_single_interval_trace_is_exact():
    """One interval → its representative IS the whole trace."""
    from repro.core.pipeline import extrapolate

    events = [
        TraceEvent(0.0, 0, EventKind.THREAD_BEGIN),
        TraceEvent(0.0, 1, EventKind.THREAD_BEGIN),
    ]
    for i in range(5):
        events.append(TraceEvent(1.0 + i, 0, EventKind.REMOTE_READ, owner=1, nbytes=8))
        events.append(TraceEvent(1.5 + i, 1, EventKind.REMOTE_READ, owner=0, nbytes=8))
    events.append(TraceEvent(10.0, 0, EventKind.THREAD_END))
    events.append(TraceEvent(10.0, 1, EventKind.THREAD_END))
    events.sort(key=lambda e: e.time)
    tr = Trace(TraceMeta(program="one", n_threads=2), events)
    params = by_name("cm5")
    # events mode with a huge chunk keeps everything in one interval
    cfg = SamplingConfig(mode="events", interval_events=1000)
    outcome = estimate_sampled(tr, params, cfg)
    assert outcome.plan.k == 1
    full = extrapolate(tr, params)
    assert outcome.predicted_time == pytest.approx(full.predicted_time, rel=1e-9)


def test_estimate_simulates_fewer_events():
    tr = matmul_trace(4)
    outcome = estimate_sampled(tr, by_name("cm5"), SamplingConfig())
    assert outcome.events_simulated < len(tr.events)
    assert outcome.result.estimated is True
    sampling = outcome.result.sampling
    assert sampling["events_total"] == len(tr.events)
    assert sampling["events_simulated"] == outcome.events_simulated
    assert "predicted_time_us" in sampling["error_bars"]


def test_estimate_byte_deterministic():
    tr = matmul_trace(4)
    params = by_name("cm5")
    cfg = SamplingConfig(seed=7)
    a = estimate_sampled(tr, params, cfg)
    b = estimate_sampled(tr, params, cfg)
    assert json.dumps(a.result.sampling, sort_keys=True) == json.dumps(
        b.result.sampling, sort_keys=True
    )
    assert a.predicted_time == b.predicted_time


def test_sample_report_mentions_plan():
    tr = matmul_trace(4)
    report = sample_report(tr, SamplingConfig())
    assert "chosen k:" in report
    assert "intervals:" in report
    assert "representative" in report


def test_config_validation():
    with pytest.raises(ValueError, match="mode"):
        SamplingConfig(mode="nope")
    with pytest.raises(ValueError, match="max_phases"):
        SamplingConfig(max_phases=0)
    with pytest.raises(ValueError, match="did you mean"):
        SamplingConfig.from_dict({"max_phase": 4})
