"""Sampled-vs-full accuracy on the paper's benchmark suite.

The documented contract (docs/SAMPLING.md): at default settings the
sampled estimate reproduces the full simulation's predicted time within
10% relative error on the fig4–fig9 benchmarks, while simulating
strictly fewer events on multi-interval traces.
"""

import pytest

from repro import measure
from repro.bench.suite import get_benchmark
from repro.core.pipeline import extrapolate
from repro.core.presets import by_name
from repro.experiments.paramsets import matmul_config, suite_configs
from repro.sampling import SamplingConfig, estimate_sampled

REL_ERROR_BOUND = 0.10


def _trace(name, n):
    if name == "matmul":
        cfg = matmul_config(quick=True)
    elif name == "grid":
        # The quick grid runs so few iterations (9 intervals) that the
        # phase budget covers nearly everything — the documented
        # tiny-trace caveat.  More iterations puts it in the regime
        # sampling is for.
        from repro.bench.grid import GridConfig

        cfg = GridConfig(patch_rows=6, patch_cols=6, m=8, iterations=16)
    else:
        cfg = suite_configs(quick=True)[name]
    maker = get_benchmark(name).make_program(cfg)
    return measure(maker(n), n, name=name)


@pytest.mark.parametrize(
    "name,n",
    [
        ("matmul", 8),
        ("grid", 8),
        ("mgrid", 4),
        ("sparse", 8),
        ("sort", 8),
    ],
)
def test_sampled_within_documented_bound(name, n):
    trace = _trace(name, n)
    params = by_name("cm5")
    full = extrapolate(trace, params)
    sampled = estimate_sampled(trace, params, SamplingConfig(seed=0))
    rel = abs(sampled.predicted_time - full.predicted_time) / full.predicted_time
    assert rel <= REL_ERROR_BOUND, (
        f"{name} n={n}: sampled {sampled.predicted_time:.1f} vs full "
        f"{full.predicted_time:.1f} (rel {rel:.2%})"
    )
    # Sampling must actually skip work on these multi-interval traces.
    assert sampled.events_simulated < len(trace.events)


def test_sampled_tracks_full_across_machines():
    """The estimate tracks the full simulation across presets, not just
    one parameter point."""
    trace = _trace("matmul", 8)
    for preset in ("cm5", "distributed_memory", "ideal"):
        params = by_name(preset)
        full = extrapolate(trace, params)
        sampled = estimate_sampled(trace, params, SamplingConfig(seed=0))
        rel = abs(sampled.predicted_time - full.predicted_time) / full.predicted_time
        assert rel <= REL_ERROR_BOUND, f"{preset}: rel {rel:.2%}"
