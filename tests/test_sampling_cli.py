"""extrap predict --sample / validate --sample-report / sweep stats."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("sampling-cli") / "m.jsonl.gz"
    assert main(["trace", "matmul", "-n", "8", "-o", str(path)]) == 0
    return path


def test_predict_sample(trace_path, capsys):
    assert main(["predict", str(trace_path), "--sample"]) == 0
    out = capsys.readouterr().out
    assert "[sampled estimate]" in out
    assert "sampling:" in out
    assert "events simulated:" in out
    assert "+/-" in out  # error bars


def test_predict_sample_deterministic(trace_path, capsys):
    assert main(["predict", str(trace_path), "--sample", "--sample-seed", "5"]) == 0
    first = capsys.readouterr().out
    assert main(["predict", str(trace_path), "--sample", "--sample-seed", "5"]) == 0
    assert capsys.readouterr().out == first


def test_predict_sample_rejects_timeline(trace_path, tmp_path, capsys):
    out = str(tmp_path / "tl.json")
    assert main(["predict", str(trace_path), "--sample", "--timeline", out]) == 2
    err = capsys.readouterr().err
    assert "extrap: error:" in err and "Traceback" not in err


def test_predict_sample_rejects_profile(trace_path, capsys):
    assert main(["predict", str(trace_path), "--sample", "--profile"]) == 2
    err = capsys.readouterr().err
    assert "extrap: error:" in err


def test_predict_bad_sample_mode(trace_path, capsys):
    # argparse rejects the choice itself (usage + exit 2)
    with pytest.raises(SystemExit) as ei:
        main(["predict", str(trace_path), "--sample", "--sample-mode", "nope"])
    assert ei.value.code == 2
    err = capsys.readouterr().err
    assert "invalid choice" in err


def test_trace_unknown_suffix_chain_exits_2(tmp_path, capsys):
    """Write side: bad suffix chain is a one-line exit-2, no traceback."""
    out = tmp_path / "x.csv.gz"
    assert main(["trace", "grid", "-n", "2", "-o", str(out)]) == 2
    err = capsys.readouterr().err
    assert "extrap: error:" in err and ".csv.gz" in err


def test_predict_unknown_suffix_chain_exits_2(trace_path, tmp_path, capsys):
    """Read side: compression suffix over an unknown format names the chain."""
    bad = tmp_path / "m.jsonl.zip"
    bad.write_bytes(trace_path.read_bytes())
    assert main(["predict", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "extrap: error:" in err and ".jsonl.zip" in err


def test_validate_sample_report(trace_path, capsys):
    assert main(["validate", str(trace_path), "--sample-report"]) == 0
    out = capsys.readouterr().out
    assert "chosen k:" in out
    assert "intervals:" in out
    assert "representative" in out
    assert "weight" in out


def test_validate_sample_report_compressed_equals_plain(trace_path, tmp_path, capsys):
    """The report sees through compression: same plan either way."""
    import gzip

    plain = tmp_path / "m.jsonl"
    plain.write_bytes(gzip.decompress(trace_path.read_bytes()))
    assert main(["validate", str(trace_path), "--sample-report"]) == 0
    compressed_out = capsys.readouterr().out
    assert main(["validate", str(plain), "--sample-report"]) == 0
    plain_out = capsys.readouterr().out
    # Everything after the per-file header (path + sha) is identical.
    tail = lambda s: s.split("sampling plan:", 1)[1]
    assert tail(compressed_out) == tail(plain_out)


def test_sweep_stats_sampled_breakdown(trace_path, tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(
        json.dumps(
            {
                "name": "s",
                "preset": "cm5",
                "grid": {"network.hop_time": [0.5, 1.0]},
                "sample": {"seed": 0, "max_phases": 8},
            }
        )
    )
    cache = tmp_path / "cache"
    args = ["--trace", str(trace_path), "--cache-dir", str(cache)]
    assert (
        main(["sweep", "run", str(spec), *args, "-o", str(tmp_path / "r.json")]) == 0
    )
    capsys.readouterr()
    assert main(["sweep", "stats", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "sampled estimates: 2" in out
    assert "full simulations: 0" in out
    assert "estimated compute saved" in out
