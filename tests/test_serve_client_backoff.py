"""Example client backoff: honors Retry-After, caps retries, seeded jitter."""

import importlib.util
import random
from pathlib import Path

import pytest

CLIENT_PY = Path(__file__).resolve().parent.parent / "examples" / "serve_client.py"


@pytest.fixture(scope="module")
def mod():
    spec = importlib.util.spec_from_file_location("serve_client", CLIENT_PY)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def make_client(mod, responses, seed=7):
    """Client whose transport replays ``responses`` and whose sleeps
    are recorded instead of slept."""
    client = mod.Client("h", 0, rng=random.Random(seed), sleep=None)
    script = list(responses)
    calls = []
    slept = []

    def fake_request(method, path, body=None):
        calls.append((method, path, body))
        return script[min(len(calls) - 1, len(script) - 1)]

    client.request = fake_request
    client.sleep = slept.append
    return client, calls, slept


def test_success_passes_through_without_sleeping(mod):
    client, calls, slept = make_client(mod, [(200, {"ok": True}, {})])
    status, data, headers = client.request_retry("GET", "/v1/stats")
    assert (status, data) == (200, {"ok": True})
    assert len(calls) == 1
    assert slept == []


def test_429_honors_retry_after_header_as_floor(mod):
    responses = [
        (429, {"error": {"retry_after": 3}}, {"Retry-After": "3"}),
        (200, {"ok": True}, {}),
    ]
    client, calls, slept = make_client(mod, responses)
    status, _, _ = client.request_retry("POST", "/v1/predict", {"x": 1})
    assert status == 200
    assert len(calls) == 2
    assert len(slept) == 1
    # Floor is the server's Retry-After; jitter adds at most base*2^0.
    assert 3.0 <= slept[0] <= 3.0 + mod.BACKOFF_BASE_S


def test_503_falls_back_to_body_retry_after(mod):
    responses = [
        (503, {"error": {"retry_after": 2}}, {}),  # no header
        (200, {"ok": True}, {}),
    ]
    client, _, slept = make_client(mod, responses)
    status, _, _ = client.request_retry("POST", "/v1/sweeps", {})
    assert status == 200
    assert 2.0 <= slept[0] <= 2.0 + mod.BACKOFF_BASE_S


def test_retries_capped_then_returns_last_response(mod):
    always_limited = [(429, {"error": {"retry_after": 1}}, {"Retry-After": "1"})]
    client, calls, slept = make_client(mod, always_limited)
    status, data, _ = client.request_retry("GET", "/v1/stats", max_retries=3)
    assert status == 429  # surfaced, not raised — caller decides
    assert len(calls) == 4  # initial + 3 retries
    assert len(slept) == 3


def test_jitter_grows_exponentially_and_caps(mod):
    always = [(503, {"error": {"retry_after": 0}}, {"Retry-After": "0"})]
    client, _, slept = make_client(mod, always)
    client.request_retry("GET", "/v1/stats", max_retries=10)
    caps = [
        min(mod.BACKOFF_CAP_S, mod.BACKOFF_BASE_S * (2 ** i))
        for i in range(10)
    ]
    assert all(0.0 <= s <= c for s, c in zip(slept, caps))
    # Later windows actually widen (probability ~1 under a fixed seed).
    assert max(slept[5:]) > max(slept[:2])


def test_seeded_jitter_is_reproducible(mod):
    responses = [(429, {"error": {"retry_after": 1}}, {"Retry-After": "1"})]
    client_a, _, slept_a = make_client(mod, responses, seed=42)
    client_b, _, slept_b = make_client(mod, responses, seed=42)
    client_c, _, slept_c = make_client(mod, responses, seed=43)
    for c in (client_a, client_b, client_c):
        c.request_retry("GET", "/v1/stats", max_retries=4)
    assert slept_a == slept_b
    assert slept_a != slept_c


def test_non_retryable_errors_return_immediately(mod):
    client, calls, slept = make_client(mod, [(400, {"error": {}}, {})])
    status, _, _ = client.request_retry("POST", "/v1/predict", {})
    assert status == 400
    assert len(calls) == 1
    assert slept == []
