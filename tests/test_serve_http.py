"""Serve HTTP layer: wire contract, concurrency, graceful shutdown."""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.serve import ExtrapService, start_server
from repro.sweep.cache import ResultCache

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def trace_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-http-traces")
    assert main(["trace", "embar", "-n", "4", "-o", str(root / "t.jsonl")]) == 0
    return root


@pytest.fixture
def server(trace_root, tmp_path):
    service = ExtrapService(
        trace_root=trace_root,
        cache=ResultCache(tmp_path / "cache"),
        queue_depth=2,
        workers=1,
    )
    srv, thread = start_server(service, port=0)
    yield srv
    srv.shutdown()
    thread.join(10)
    srv.close(drain=False)


def request(server, method, path, body=None, raw=None):
    status, data, _headers = request_full(server, method, path, body, raw)
    return status, data


def request_full(server, method, path, body=None, raw=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
    payload = raw if raw is not None else (
        json.dumps(body) if body is not None else None
    )
    conn.request(method, path, body=payload)
    resp = conn.getresponse()
    data = json.loads(resp.read())
    headers = dict(resp.getheaders())
    conn.close()
    return resp.status, data, headers


# -- happy paths -------------------------------------------------------------


def test_healthz(server):
    status, data = request(server, "GET", "/v1/healthz")
    assert status == 200
    assert data["status"] == "ok"


def test_predict_and_cache_over_http(server):
    body = {"trace_path": "t.jsonl", "preset": "cm5"}
    s1, first = request(server, "POST", "/v1/predict", body)
    s2, second = request(server, "POST", "/v1/predict", body)
    assert (s1, s2) == (200, 200)
    assert first["cached"] is False and second["cached"] is True
    assert first["metrics"] == second["metrics"]
    assert first["report"] == second["report"]
    status, stats = request(server, "GET", "/v1/stats")
    assert status == 200
    assert stats["cache"]["hits"] == 1
    assert stats["requests"]["predict"] == 2


def test_sweep_submit_poll_fetch(server):
    spec = {
        "name": "httpdemo",
        "preset": "cm5",
        "grid": {"network.comm_startup_time": [50.0, 100.0]},
    }
    status, job = request(
        server, "POST", "/v1/sweeps", {"spec": spec, "trace_path": "t.jsonl"}
    )
    assert status == 202
    assert job["status"] == "queued"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        status, st = request(server, "GET", f"/v1/jobs/{job['job']}")
        assert status == 200
        if st["status"] in ("done", "failed"):
            break
        time.sleep(0.02)
    assert st["status"] == "done"
    status, res = request(server, "GET", f"/v1/jobs/{job['job']}/result")
    assert status == 200
    assert len(res["result"]["points"]) == 2


# -- error contract ----------------------------------------------------------


def test_error_responses_are_json_one_liners(server):
    checks = [
        ("GET", "/v1/nope", None, None, 404),
        ("GET", "/v1/jobs/j999999", None, None, 404),
        ("GET", "/v1/jobs/j999999/result", None, None, 404),
        ("PUT", "/v1/predict", None, None, 405),
        ("POST", "/v1/predict", None, None, 400),  # no body
        ("POST", "/v1/predict", None, "{not json", 400),
        ("POST", "/v1/predict", {"trase_path": "t.jsonl"}, None, 400),
        ("POST", "/v1/predict", {"trace_path": "../escape"}, None, 400),
        ("POST", "/v1/predict", {"trace_path": "missing.jsonl"}, None, 404),
        ("POST", "/v1/sweeps", {"spec": {}}, None, 400),
    ]
    for method, path, body, raw, expected in checks:
        status, data = request(server, method, path, body, raw)
        assert status == expected, (method, path, status)
        assert data["error"]["status"] == expected
        message = data["error"]["message"]
        assert "\n" not in message
        assert "Traceback" not in message


def test_queue_overflow_sheds_503_over_http(server, trace_root):
    """Saturation is a 503 shed with a deterministic Retry-After."""
    from repro.serve.service import SHED_RETRY_AFTER_S

    service = server.service
    gate = threading.Event()
    running = threading.Event()
    service.jobs.submit("test", lambda: (running.set(), gate.wait()))
    assert running.wait(10)
    try:
        spec = {
            "name": "full",
            "preset": "cm5",
            "grid": {"network.comm_startup_time": [50.0]},
        }
        body = {"spec": spec, "trace_path": "t.jsonl"}
        statuses = []
        for _ in range(service.jobs.depth + 1):
            status, data, headers = request_full(server, "POST", "/v1/sweeps", body)
            statuses.append(status)
        assert statuses[:-1] == [202] * service.jobs.depth
        assert statuses[-1] == 503
        assert headers["Retry-After"] == str(SHED_RETRY_AFTER_S)
        assert data["error"]["retry_after"] == SHED_RETRY_AFTER_S
    finally:
        gate.set()


def test_rate_limit_429_over_http(trace_root, tmp_path):
    """Over-budget clients get 429 + Retry-After; healthz stays exempt."""
    service = ExtrapService(
        trace_root=trace_root,
        cache=None,
        rate_limit=0.001,  # one token every ~17 minutes: burst then stop
        rate_burst=2,
    )
    srv, thread = start_server(service, port=0)
    try:
        for _ in range(2):
            status, _ = request(srv, "GET", "/v1/stats")
            assert status == 200
        status, data, headers = request_full(srv, "GET", "/v1/stats")
        assert status == 429
        assert "rate limit exceeded" in data["error"]["message"]
        retry_after = int(headers["Retry-After"])
        assert retry_after >= 1
        assert data["error"]["retry_after"] == retry_after
        # Liveness and metric scrapes must survive a throttled client.
        assert request(srv, "GET", "/v1/healthz")[0] == 200
        conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=60)
        conn.request("GET", "/v1/metrics")
        resp = conn.getresponse()
        text = resp.read().decode("utf-8")
        conn.close()
        assert resp.status == 200
        assert 'serve_rate_limited_total{code="429"} 1' in text
        assert service.stats()["admission"]["rate_limited_total"] == 1
    finally:
        srv.shutdown()
        thread.join(10)
        srv.close(drain=False)


def test_concurrent_clients_identical_responses(server):
    body = {"trace_path": "t.jsonl", "preset": "cm5"}
    request(server, "POST", "/v1/predict", body)  # warm the cache
    results = []
    errors = []

    def hammer():
        try:
            for _ in range(4):
                status, data = request(server, "POST", "/v1/predict", body)
                results.append((status, data["metrics"], data["report"]))
        except Exception as exc:  # pragma: no cover — failure detail
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    assert not errors
    assert len(results) == 32
    assert len({(s, json.dumps(m, sort_keys=True), r) for s, m, r in results}) == 1


# -- process-level graceful shutdown -----------------------------------------


@pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_and_exits_zero(trace_root, tmp_path, sig):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.cli", "serve",
            "--port", "0",
            "--trace-root", str(trace_root),
            "--cache-dir", str(tmp_path / "cache"),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", line)
        assert match, f"no URL announced: {line!r}"
        port = int(match.group(1))
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        conn.request(
            "POST", "/v1/predict", body=json.dumps({"trace_path": "t.jsonl"})
        )
        resp = conn.getresponse()
        assert resp.status == 200
        assert json.loads(resp.read())["cached"] is False
        conn.close()
        proc.send_signal(sig)
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(10)
