"""Job journal: record grammar, replay forensics, in-process recovery."""

import json
import threading
import time

import pytest

from repro.cli import main
from repro.serve import ExtrapService, JobJournal, request_digest
from repro.serve.journal import JOURNAL_SCHEMA
from repro.sweep.cache import ResultCache

SPEC = {
    "name": "journal-demo",
    "preset": "cm5",
    "grid": {"network.comm_startup_time": [50.0, 100.0]},
}


@pytest.fixture(scope="module")
def trace_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("journal-traces")
    assert main(["trace", "embar", "-n", "4", "-o", str(root / "t.jsonl")]) == 0
    return root


def record_line(op, job, **fields):
    return (
        json.dumps(
            {"schema": JOURNAL_SCHEMA, "op": op, "job": job, **fields},
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
    )


def submit_line(job, body, **extra):
    return record_line(
        "submit", job, kind="sweep", label="", request=body,
        digest=request_digest(body), **extra,
    )


# -- append/replay round trip ------------------------------------------------


def test_append_then_replay_round_trip(tmp_path):
    j = JobJournal(tmp_path)
    body = {"spec": SPEC, "trace_path": "t.jsonl"}
    j.append("submit", "j000001", kind="sweep", label="x", request=body,
             digest=request_digest(body))
    j.append("start", "j000001")
    j.append("done", "j000001")
    j.append("submit", "j000002", kind="sweep", label="y", request=body,
             digest=request_digest(body))
    j.append("start", "j000002")
    j.close()
    replay = JobJournal(tmp_path).replay()
    assert replay.entries == 5
    assert replay.corrupt == 0
    assert not replay.truncated_tail
    # j000001 finished; j000002 was mid-run -> owed work.
    assert [r["job"] for r in replay.pending] == ["j000002"]


def test_replay_missing_journal_is_empty(tmp_path):
    replay = JobJournal(tmp_path).replay()
    assert replay.entries == 0
    assert replay.pending == []


@pytest.mark.parametrize("terminal", ["done", "failed", "cancelled"])
def test_terminal_ops_need_no_recovery(tmp_path, terminal):
    j = JobJournal(tmp_path)
    (j.root / "jobs.jsonl").write_text(
        submit_line("j000001", {"spec": SPEC}) + record_line(terminal, "j000001")
    )
    assert j.replay().pending == []


def test_interrupted_is_recoverable(tmp_path):
    """A bounded-drain 'interrupted' job is exactly what restarts recover."""
    j = JobJournal(tmp_path)
    (j.root / "jobs.jsonl").write_text(
        submit_line("j000001", {"spec": SPEC})
        + record_line("start", "j000001")
        + record_line("interrupted", "j000001")
    )
    assert [r["job"] for r in j.replay().pending] == ["j000001"]


# -- crash artifacts ---------------------------------------------------------


def test_truncated_tail_dropped_silently(tmp_path):
    """A torn final line is the normal kill -9 artifact, not corruption."""
    j = JobJournal(tmp_path)
    good = submit_line("j000001", {"spec": SPEC})
    torn = submit_line("j000002", {"spec": SPEC})[:25]  # no newline, mid-JSON
    (j.root / "jobs.jsonl").write_text(good + torn)
    replay = j.replay()
    assert replay.truncated_tail
    assert replay.corrupt == 0
    assert [r["job"] for r in replay.pending] == ["j000001"]
    assert not j.quarantine_path.exists()


def test_corrupt_midfile_line_quarantined(tmp_path):
    j = JobJournal(tmp_path)
    (j.root / "jobs.jsonl").write_text(
        submit_line("j000001", {"spec": SPEC})
        + "{this is not json\n"
        + submit_line("j000002", {"spec": SPEC})
    )
    replay = j.replay()
    assert replay.corrupt == 1
    assert [r["job"] for r in replay.pending] == ["j000001", "j000002"]
    assert "{this is not json" in j.quarantine_path.read_text()


def test_unknown_schema_version_quarantined(tmp_path):
    j = JobJournal(tmp_path)
    foreign = json.dumps(
        {"schema": 999, "op": "submit", "job": "j000009", "request": {}}
    )
    (j.root / "jobs.jsonl").write_text(
        foreign + "\n" + submit_line("j000001", {"spec": SPEC})
    )
    replay = j.replay()
    assert replay.corrupt == 1
    assert [r["job"] for r in replay.pending] == ["j000001"]


def test_bad_shapes_quarantined(tmp_path):
    j = JobJournal(tmp_path)
    lines = [
        json.dumps([1, 2, 3]),                                    # not an object
        json.dumps({"schema": 1, "op": "explode", "job": "j1"}),  # unknown op
        json.dumps({"schema": 1, "op": "start"}),                 # no job id
        json.dumps({"schema": 1, "op": "submit", "job": "j1"}),   # no request
    ]
    (j.root / "jobs.jsonl").write_text("\n".join(lines) + "\n")
    replay = j.replay()
    assert replay.corrupt == 4
    assert replay.entries == 0


def test_duplicate_job_ids_first_submit_wins(tmp_path):
    j = JobJournal(tmp_path)
    first = {"spec": SPEC, "trace_path": "a.jsonl"}
    second = {"spec": SPEC, "trace_path": "b.jsonl"}
    (j.root / "jobs.jsonl").write_text(
        submit_line("j000001", first) + submit_line("j000001", second)
    )
    replay = j.replay()
    assert replay.duplicates == 1
    assert len(replay.pending) == 1
    assert replay.pending[0]["request"]["trace_path"] == "a.jsonl"


def test_orphan_transitions_counted_not_fatal(tmp_path):
    j = JobJournal(tmp_path)
    (j.root / "jobs.jsonl").write_text(
        record_line("start", "j000042") + record_line("done", "j000042")
    )
    replay = j.replay()
    assert replay.orphans == 2
    assert replay.pending == []


def test_reset_compacts_atomically(tmp_path):
    j = JobJournal(tmp_path)
    body = {"spec": SPEC}
    for i in range(5):
        j.append("submit", f"j{i:06d}", kind="sweep", label="", request=body,
                 digest="d")
        j.append("done", f"j{i:06d}")
    keep = [{"schema": 1, "op": "submit", "job": "jX", "kind": "sweep",
             "label": "", "request": body, "digest": "d"}]
    j.reset(keep=keep)
    assert j.entries == 1
    replay = JobJournal(tmp_path).replay()
    assert [r["job"] for r in replay.pending] == ["jX"]
    # Appends keep working after a compaction.
    j.append("start", "jX")
    assert j.entries == 2
    j.close()


def test_append_is_durable_per_record(tmp_path):
    """Every append is on disk immediately — no buffering window."""
    j = JobJournal(tmp_path)
    j.append("submit", "j000001", kind="sweep", label="", request={"spec": SPEC},
             digest="d")
    on_disk = (tmp_path / "jobs.jsonl").read_text()
    assert on_disk.endswith("\n")
    assert json.loads(on_disk.splitlines()[0])["job"] == "j000001"
    j.close()


def test_append_rejects_unknown_op(tmp_path):
    with pytest.raises(ValueError):
        JobJournal(tmp_path).append("explode", "j1")


def test_unjournalable_submit_is_rejected():
    """Disk-full on the submit record must fail the submit — a 202
    whose journal write was dropped would be a promise a crash breaks."""
    from repro.serve import JobQueue

    def observer(job):
        if job.status == "queued":
            raise OSError("disk full")

    q = JobQueue(depth=4, workers=1, observer=observer)
    try:
        with pytest.raises(OSError):
            q.submit("test", lambda: None, payload={}, digest="d")
        assert sum(q.counts().values()) == 0  # nothing half-registered
    finally:
        q.close(drain=True, timeout=10)


# -- in-process service recovery --------------------------------------------


def make_service(trace_root, tmp_path, state_dir, **kwargs):
    return ExtrapService(
        trace_root=trace_root,
        cache=ResultCache(tmp_path / "cache"),
        state_dir=state_dir,
        **kwargs,
    )


def wait_done(service, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = service.job_status(job_id)
        if status["status"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


def test_service_without_state_dir_journals_nothing(trace_root, tmp_path):
    svc = ExtrapService(trace_root=trace_root, cache=None)
    try:
        svc.submit_sweep({"spec": SPEC, "trace_path": "t.jsonl"})
        assert svc.journal is None
        assert list(tmp_path.iterdir()) == []
    finally:
        svc.close(drain=True, timeout=60)


def test_recovery_reruns_interrupted_job_same_bytes(trace_root, tmp_path):
    """Acceptance: a journaled mid-run job re-runs to the same artifact."""
    state = tmp_path / "state"
    body = {"spec": SPEC, "trace_path": "t.jsonl"}
    # A previous server life accepted the job and died mid-run.
    j = JobJournal(state)
    j.append("submit", "j000007", kind="sweep", label="", request=body,
             digest=request_digest(body))
    j.append("start", "j000007")
    j.close()

    svc = make_service(trace_root, tmp_path, state)
    try:
        status = svc.job_status("j000007")  # original id still pollable
        assert status["recovered"] is True
        assert wait_done(svc, "j000007")["status"] == "done"
        recovered = svc.job_result("j000007")["result"]
        assert svc.stats()["journal"]["recovered_total"] == 1
        assert svc.stats()["journal"]["last_replay"]["recovered"] == 1
        # New ids continue past the recovered one.
        fresh = svc.submit_sweep(body)
        assert fresh["job"] == "j000008"
        assert wait_done(svc, "j000008")["status"] == "done"
        fresh_result = svc.job_result("j000008")["result"]
    finally:
        svc.close(drain=True, timeout=60)
    # Identical deterministic artifact (counters are runtime telemetry —
    # the recovered run hits the cache for points the first life finished).
    a = {k: v for k, v in recovered.items() if k != "counters"}
    b = {k: v for k, v in fresh_result.items() if k != "counters"}
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_recovery_of_vanished_trace_fails_visibly(trace_root, tmp_path):
    state = tmp_path / "state"
    body = {"spec": SPEC, "trace_path": "gone.jsonl"}
    j = JobJournal(state)
    j.append("submit", "j000001", kind="sweep", label="", request=body,
             digest=request_digest(body))
    j.close()
    svc = make_service(trace_root, tmp_path, state)
    try:
        status = wait_done(svc, "j000001")
        assert status["status"] == "failed"
        assert "recovery failed" in status["error"]["message"]
        assert "gone.jsonl" in status["error"]["message"]
    finally:
        svc.close(drain=True, timeout=60)


def test_done_jobs_do_not_resurrect(trace_root, tmp_path):
    state = tmp_path / "state"
    body = {"spec": SPEC, "trace_path": "t.jsonl"}
    j = JobJournal(state)
    j.append("submit", "j000001", kind="sweep", label="", request=body,
             digest=request_digest(body))
    j.append("start", "j000001")
    j.append("done", "j000001")
    j.close()
    svc = make_service(trace_root, tmp_path, state)
    try:
        assert svc.recovered_total == 0
        with pytest.raises(Exception) as ei:
            svc.job_status("j000001")
        assert getattr(ei.value, "status", None) == 404
    finally:
        svc.close(drain=True, timeout=60)


def test_lifecycle_is_journaled_end_to_end(trace_root, tmp_path):
    """submit/start/done all land in the journal, fsync'd, in order."""
    state = tmp_path / "state"
    svc = make_service(trace_root, tmp_path, state)
    try:
        job = svc.submit_sweep({"spec": SPEC, "trace_path": "t.jsonl"})
        wait_done(svc, job["job"])
    finally:
        svc.close(drain=True, timeout=60)
    ops = [
        json.loads(line)["op"]
        for line in (state / "jobs.jsonl").read_text().splitlines()
    ]
    assert ops == ["submit", "start", "done"]
    # A restart over this journal recovers nothing — the job finished.
    svc2 = make_service(trace_root, tmp_path / "b", state)
    try:
        assert svc2.recovered_total == 0
    finally:
        svc2.close(drain=True, timeout=60)


def test_ephemeral_jobs_not_journaled(trace_root, tmp_path):
    """Direct JobQueue submissions carry no payload -> never journaled."""
    state = tmp_path / "state"
    svc = make_service(trace_root, tmp_path, state)
    try:
        done = threading.Event()
        svc.jobs.submit("test", done.set)
        assert done.wait(10)
    finally:
        svc.close(drain=True, timeout=60)
    assert (state / "jobs.jsonl").read_text() == ""


def test_drain_timeout_journals_interrupted(trace_root, tmp_path):
    """close() past drain-timeout journals interrupted, restart recovers."""
    state = tmp_path / "state"
    body = {"spec": SPEC, "trace_path": "t.jsonl"}
    svc = make_service(trace_root, tmp_path, state, workers=1)
    gate = threading.Event()
    running = threading.Event()
    svc.jobs.submit("test", lambda: (running.set(), gate.wait()))
    assert running.wait(10)
    job = svc.submit_sweep(body)  # stuck behind the gated job
    drained = svc.close(drain=True, timeout=0.2)
    assert drained is False
    assert svc.job_status(job["job"])["status"] == "interrupted"
    e = pytest.raises(Exception, svc.job_result, job["job"])
    assert getattr(e.value, "status", None) == 409
    ops = [
        json.loads(line)["op"]
        for line in (state / "jobs.jsonl").read_text().splitlines()
    ]
    assert ops == ["submit", "interrupted"]
    gate.set()
    # The supervisor restart: the interrupted job runs to completion.
    svc2 = make_service(trace_root, tmp_path / "b", state)
    try:
        assert svc2.recovered_total == 1
        assert wait_done(svc2, job["job"])["status"] == "done"
    finally:
        svc2.close(drain=True, timeout=60)
