"""Serve observability: ``GET /v1/metrics`` exposition and the
``diagnose`` predict option."""

import http.client
import json
import re

import pytest

from repro.cli import main
from repro.serve import (
    METRICS_CONTENT_TYPE,
    ExtrapService,
    render_metrics,
    start_server,
)
from repro.sweep.cache import ResultCache

#: ``name{labels} value`` — the text exposition sample line grammar
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[0-9eE.+-]+|NaN|[+-]Inf)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def parse_exposition(text):
    """Validate Prometheus text format 0.0.4; return {family: [samples]}."""
    assert text.endswith("\n")
    families = {}
    typed = {}
    current = None
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            current = line.split()[2]
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            assert name == current, "TYPE must follow its HELP"
            typed[name] = kind
            families.setdefault(name, [])
            continue
        m = SAMPLE_RE.match(line)
        assert m, f"bad sample line: {line!r}"
        name = m.group("name")
        family = name
        for suffix in ("_count", "_sum", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
        assert family in typed, f"sample {name} has no TYPE comment"
        if m.group("labels"):
            pairs = re.findall(
                r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"', m.group("labels")
            )
            assert pairs, f"unparseable labels: {line!r}"
            for pair in pairs:
                assert LABEL_RE.match(pair), f"bad label: {pair!r}"
        float(m.group("value"))
        families[family].append(line)
    return families, typed


@pytest.fixture(scope="module")
def trace_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-metrics-traces")
    assert main(["trace", "embar", "-n", "8", "-o", str(root / "t.jsonl")]) == 0
    return root


@pytest.fixture
def service(trace_root, tmp_path):
    svc = ExtrapService(
        trace_root=trace_root, cache=ResultCache(tmp_path / "cache")
    )
    yield svc
    svc.close(drain=False)


@pytest.fixture
def server(service):
    srv, thread = start_server(service, port=0)
    yield srv
    srv.shutdown()
    thread.join(10)
    srv.close(drain=False)


def fetch(server, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
    conn.request(method, path, body=json.dumps(body) if body else None)
    resp = conn.getresponse()
    data = resp.read()
    headers = dict(resp.getheaders())
    conn.close()
    return resp.status, headers, data


# -- /v1/metrics -------------------------------------------------------------


def test_metrics_endpoint_serves_valid_exposition(server):
    """Acceptance: GET /v1/metrics parses as Prometheus text format."""
    fetch(server, "GET", "/v1/healthz")
    status, headers, data = fetch(server, "GET", "/v1/metrics")
    assert status == 200
    assert headers["Content-Type"] == METRICS_CONTENT_TYPE
    families, typed = parse_exposition(data.decode("utf-8"))
    assert typed["extrap_requests_total"] == "counter"
    assert typed["extrap_uptime_seconds"] == "gauge"
    assert typed["extrap_job_run_seconds"] == "summary"
    # Counter names follow the _total convention.
    for name, kind in typed.items():
        if kind == "counter":
            assert name.endswith("_total"), name
    assert any(
        'endpoint="healthz"' in line
        for line in families["extrap_requests_total"]
    )


def test_metrics_reflect_cache_and_request_counters(server):
    body = {"trace_path": "t.jsonl", "preset": "cm5"}
    for _ in range(2):
        status, _, _ = fetch(server, "POST", "/v1/predict", body)
        assert status == 200
    _, _, data = fetch(server, "GET", "/v1/metrics")
    text = data.decode("utf-8")
    assert 'extrap_requests_total{endpoint="predict"} 2' in text
    assert "extrap_cache_enabled 1" in text
    assert "extrap_cache_hits_total 1" in text
    assert "extrap_cache_misses_total 1" in text
    assert 'extrap_jobs{status="queued"} 0' in text


def test_metrics_render_without_cache():
    service = ExtrapService(trace_root=".")
    try:
        text = render_metrics(service.stats())
    finally:
        service.close(drain=False)
    assert "extrap_cache_enabled 0" in text
    assert "extrap_cache_hits_total" not in text
    parse_exposition(text)


def test_metrics_label_escaping():
    stats = {
        "version": 'v"1\\x\n2',
        "uptime_s": 1.0,
        "requests": {'e"p\\1': 3},
        "cache": {"enabled": False},
        "jobs": {
            "queued": 0,
            "running": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "interrupted": 0,
            "queue_depth_limit": 4,
            "run_seconds": {},
        },
    }
    text = render_metrics(stats)
    parse_exposition(text)
    assert r'version="v\"1\\x\n2"' in text


def test_job_summary_appears_after_sweep(server, service):
    spec = {
        "name": "m",
        "preset": "cm5",
        "grid": {"network.hop_time": [0.5]},
    }
    status, _, data = fetch(
        server, "POST", "/v1/sweeps", {"spec": spec, "trace_path": "t.jsonl"}
    )
    assert status == 202
    job = json.loads(data)["job"]
    import time

    for _ in range(200):
        _, _, body = fetch(server, "GET", f"/v1/jobs/{job}")
        if json.loads(body)["status"] == "done":
            break
        time.sleep(0.05)
    _, _, data = fetch(server, "GET", "/v1/metrics")
    text = data.decode("utf-8")
    assert 'extrap_job_run_seconds_count{kind="sweep"} 1' in text
    assert 'extrap_job_run_seconds_sum{kind="sweep"}' in text


# -- predict diagnose option -------------------------------------------------


def test_predict_diagnose_attaches_findings_key(service):
    req = {"trace_path": "t.jsonl", "diagnose": True}
    out = service.predict(req)
    assert "diagnosis" in out
    assert out["diagnosis"]["schema"] == 1
    assert out["diagnosis"]["findings"] == []  # clean run stays clean
    plain = service.predict({"trace_path": "t.jsonl"})
    assert "diagnosis" not in plain


def test_predict_diagnose_caches_separately(service):
    plain = service.predict({"trace_path": "t.jsonl"})
    diagnosed = service.predict({"trace_path": "t.jsonl", "diagnose": True})
    assert plain["key"] != diagnosed["key"]
    assert plain["cached"] is False and diagnosed["cached"] is False
    # Replay of each comes from its own namespace, byte-identical body.
    again = service.predict({"trace_path": "t.jsonl", "diagnose": True})
    assert again["cached"] is True
    assert again["diagnosis"] == diagnosed["diagnosis"]
    assert again["metrics"] == diagnosed["metrics"]


def test_predict_diagnose_must_be_boolean(service):
    from repro.serve import ApiError

    with pytest.raises(ApiError) as exc:
        service.predict({"trace_path": "t.jsonl", "diagnose": "yes"})
    assert exc.value.status == 400
    assert "'diagnose'" in exc.value.message


def test_predict_diagnose_over_http(server):
    status, _, data = fetch(
        server,
        "POST",
        "/v1/predict",
        {"trace_path": "t.jsonl", "diagnose": True},
    )
    assert status == 200
    doc = json.loads(data)
    assert doc["diagnosis"]["findings"] == []
    assert doc["diagnosis"]["n_procs"] == 8
