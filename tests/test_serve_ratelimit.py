"""Token-bucket rate limiter: determinism under a fake clock, LRU bound."""

import pytest

from repro.serve import RateLimiter, retry_after_header


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def test_burst_then_exact_retry_after():
    clock = FakeClock()
    rl = RateLimiter(rate=2.0, burst=3, clock=clock)
    assert [rl.allow("c") for _ in range(3)] == [(True, 0.0)] * 3
    # Bucket empty: next token exists in 1/rate = 0.5 s, exactly.
    allowed, retry = rl.allow("c")
    assert allowed is False
    assert retry == pytest.approx(0.5)
    # Same instant, same answer — denials spend nothing.
    assert rl.allow("c") == (False, pytest.approx(0.5))


def test_refill_restores_admission():
    clock = FakeClock()
    rl = RateLimiter(rate=2.0, burst=1, clock=clock)
    assert rl.allow("c")[0] is True
    assert rl.allow("c")[0] is False
    clock.advance(0.5)  # one token accrued
    assert rl.allow("c") == (True, 0.0)
    assert rl.allow("c")[0] is False


def test_refill_caps_at_burst():
    clock = FakeClock()
    rl = RateLimiter(rate=100.0, burst=2, clock=clock)
    clock.advance(3600.0)  # an idle hour accrues burst tokens, not 360k
    assert rl.allow("c")[0] is True
    assert rl.allow("c")[0] is True
    assert rl.allow("c")[0] is False


def test_partial_refill_shrinks_retry_after():
    clock = FakeClock()
    rl = RateLimiter(rate=1.0, burst=1, clock=clock)
    rl.allow("c")
    assert rl.allow("c") == (False, pytest.approx(1.0))
    clock.advance(0.75)
    assert rl.allow("c") == (False, pytest.approx(0.25))


def test_clients_are_independent():
    clock = FakeClock()
    rl = RateLimiter(rate=1.0, burst=1, clock=clock)
    assert rl.allow("a")[0] is True
    assert rl.allow("a")[0] is False
    assert rl.allow("b")[0] is True  # b's bucket untouched by a's spend


def test_default_burst_is_ceil_rate():
    assert RateLimiter(rate=2.5).burst == 3
    assert RateLimiter(rate=0.1).burst == 1  # never below one


def test_lru_eviction_bounds_memory_and_forgives():
    clock = FakeClock()
    rl = RateLimiter(rate=1.0, burst=1, clock=clock, max_clients=2)
    rl.allow("a")
    rl.allow("b")
    assert rl.allow("a")[0] is False  # drained, and freshly used
    rl.allow("c")  # evicts b (least recently used), not a
    assert rl.tracked_clients() == 2
    assert rl.allow("a")[0] is False  # a survived eviction, still drained
    # b was evicted; it returns with a full bucket — eviction favors
    # the client, never locks one out.
    assert rl.allow("b")[0] is True


def test_bad_config_rejected():
    with pytest.raises(ValueError):
        RateLimiter(rate=0)
    with pytest.raises(ValueError):
        RateLimiter(rate=-1.0)
    with pytest.raises(ValueError):
        RateLimiter(rate=1.0, burst=0)
    with pytest.raises(ValueError):
        RateLimiter(rate=1.0, max_clients=0)


def test_config_reports_knobs():
    assert RateLimiter(rate=2.0, burst=5).config() == {"rate": 2.0, "burst": 5}


def test_retry_after_header_rounds_up_never_zero():
    assert retry_after_header(0.0) == 1
    assert retry_after_header(0.2) == 1
    assert retry_after_header(1.0) == 1
    assert retry_after_header(1.01) == 2
    assert retry_after_header(17.5) == 18
