"""Chaos harness: SIGKILL / corrupt-journal / bounded-drain recovery.

Process-level crash tests: a real ``extrap serve`` subprocess with
``--state-dir`` is killed (or SIGTERM'd past its drain budget) while a
job is in flight, restarted over the same state dir, and must finish
the job under its original id with the artifact a clean server
produces.  The ``EXTRAP_SERVE_CHAOS_SLOW_JOB_S`` hook widens the kill
window; it is a no-op unless set.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.serve.journal import JobJournal

SRC = Path(__file__).resolve().parent.parent / "src"

SPEC = {
    "name": "chaos",
    "preset": "cm5",
    "grid": {"network.comm_startup_time": [50.0, 100.0]},
}

URL_RE = re.compile(r"http://[\d.]+:(\d+)")


@pytest.fixture(scope="module")
def trace_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("recovery-traces")
    assert main(["trace", "embar", "-n", "4", "-o", str(root / "t.jsonl")]) == 0
    return root


class Server:
    """One `extrap serve` subprocess; reads the announced port."""

    def __init__(self, trace_root, *extra_args, chaos_slow_s=None):
        env = dict(os.environ, PYTHONPATH=str(SRC))
        env.pop("EXTRAP_SERVE_CHAOS_SLOW_JOB_S", None)
        if chaos_slow_s is not None:
            env["EXTRAP_SERVE_CHAOS_SLOW_JOB_S"] = str(chaos_slow_s)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli", "serve",
                "--port", "0", "--trace-root", str(trace_root), *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        self.banner = []
        self.port = None
        for _ in range(5):  # recovery announcements precede the URL line
            line = self.proc.stdout.readline()
            if not line:
                break
            self.banner.append(line)
            m = URL_RE.search(line)
            if m:
                self.port = int(m.group(1))
                break
        assert self.port, f"no URL announced: {self.banner!r}"

    def request(self, method, path, body=None, timeout=60):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            conn.request(
                method, path, body=None if body is None else json.dumps(body)
            )
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read())
        finally:
            conn.close()

    def wait_job(self, job_id, want, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, data = self.request("GET", f"/v1/jobs/{job_id}")
            assert status == 200, data
            if data["status"] in want:
                return data
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never reached {want}")

    def kill(self):
        self.proc.kill()
        self.proc.wait(10)

    def terminate(self, timeout=60):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout)

    def cleanup(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(10)


def canonical_result(artifact):
    """The deterministic artifact bytes: counters are runtime telemetry
    (a recovered run hits the cache for points the first life finished)
    and are excluded from the identity check."""
    return json.dumps(
        {k: v for k, v in artifact.items() if k != "counters"}, sort_keys=True
    )


def run_clean_baseline(trace_root, tmp_path):
    """The artifact an unhassled server produces for SPEC."""
    server = Server(trace_root, "--cache-dir", str(tmp_path / "baseline-cache"))
    try:
        status, job = server.request(
            "POST", "/v1/sweeps", {"spec": SPEC, "trace_path": "t.jsonl"}
        )
        assert status == 202
        server.wait_job(job["job"], ("done",))
        status, result = server.request(
            "GET", f"/v1/jobs/{job['job']}/result"
        )
        assert status == 200
        assert server.terminate() == 0
        return canonical_result(result["result"])
    finally:
        server.cleanup()


def test_sigkill_mid_job_recovers_to_identical_result(trace_root, tmp_path):
    """Acceptance: kill -9 mid-job, restart, same id finishes with the
    byte-identical artifact a clean run produces, and no 'recovered'
    work runs twice (the result cache absorbs the replay)."""
    state = tmp_path / "state"
    cache = tmp_path / "cache"
    server = Server(
        trace_root,
        "--state-dir", str(state),
        "--cache-dir", str(cache),
        chaos_slow_s=5,
    )
    job_id = None
    try:
        status, job = server.request(
            "POST", "/v1/sweeps", {"spec": SPEC, "trace_path": "t.jsonl"}
        )
        assert status == 202
        job_id = job["job"]
        server.wait_job(job_id, ("running",))
        server.kill()  # SIGKILL: no drain, no journal flush beyond fsync
    finally:
        server.cleanup()

    # The journal survived the kill: submit + start, nothing terminal.
    ops = [
        json.loads(line)["op"]
        for line in (state / "jobs.jsonl").read_text().splitlines()
    ]
    assert ops == ["submit", "start"]

    restarted = Server(
        trace_root, "--state-dir", str(state), "--cache-dir", str(cache)
    )
    try:
        assert any("recovered 1 unfinished job" in l for l in restarted.banner)
        data = restarted.wait_job(job_id, ("done", "failed"))
        assert data["status"] == "done", data
        assert data["recovered"] is True
        status, result = restarted.request("GET", f"/v1/jobs/{job_id}/result")
        assert status == 200
        status, stats = restarted.request("GET", "/v1/stats")
        assert stats["journal"]["recovered_total"] == 1
        assert restarted.terminate() == 0
    finally:
        restarted.cleanup()
    assert canonical_result(result["result"]) == run_clean_baseline(
        trace_root, tmp_path
    )


def test_corrupt_journal_still_recovers(trace_root, tmp_path):
    """Garbage lines and a torn tail cannot block recovery of the
    intact records around them."""
    state = tmp_path / "state"
    body = {"spec": SPEC, "trace_path": "t.jsonl"}
    j = JobJournal(state)
    from repro.serve.journal import request_digest

    j.append("submit", "j000001", kind="sweep", label="", request=body,
             digest=request_digest(body))
    j.append("start", "j000001")
    j.close()
    with open(state / "jobs.jsonl", "a") as fh:
        fh.write("@@ disk corruption, not JSON @@\n")
        fh.write('{"schema": 1, "op": "done", "job": "j00')  # torn tail

    server = Server(trace_root, "--state-dir", str(state))
    try:
        assert any("recovered 1 unfinished job" in l for l in server.banner)
        data = server.wait_job("j000001", ("done", "failed"))
        assert data["status"] == "done", data
        status, stats = server.request("GET", "/v1/stats")
        replay = stats["journal"]["last_replay"]
        assert replay["corrupt"] == 1
        assert replay["truncated_tail"] is True
        assert server.terminate() == 0
    finally:
        server.cleanup()
    # The corrupt line was preserved for forensics, not destroyed.
    assert "disk corruption" in (state / "jobs.quarantine.jsonl").read_text()


def test_drain_timeout_interrupts_then_recovers(trace_root, tmp_path):
    """SIGTERM with a job that outlives --drain-timeout: the server
    still exits 0 promptly, journals the job interrupted, and the next
    life finishes it."""
    state = tmp_path / "state"
    server = Server(
        trace_root,
        "--state-dir", str(state),
        "--drain-timeout", "1",
        chaos_slow_s=120,  # far beyond the drain budget
    )
    try:
        status, job = server.request(
            "POST", "/v1/sweeps", {"spec": SPEC, "trace_path": "t.jsonl"}
        )
        assert status == 202
        job_id = job["job"]
        server.wait_job(job_id, ("running",))
        t0 = time.monotonic()
        assert server.terminate(timeout=30) == 0  # bounded, despite the job
        assert time.monotonic() - t0 < 20
    finally:
        server.cleanup()

    ops = [
        json.loads(line)["op"]
        for line in (state / "jobs.jsonl").read_text().splitlines()
    ]
    assert ops == ["submit", "start", "interrupted"]

    restarted = Server(trace_root, "--state-dir", str(state))
    try:
        assert restarted.wait_job(job_id, ("done", "failed"))["status"] == "done"
        assert restarted.terminate() == 0
    finally:
        restarted.cleanup()


def test_clean_shutdown_leaves_nothing_to_recover(trace_root, tmp_path):
    """A drained SIGTERM journals terminal states; the next start
    recovers zero jobs."""
    state = tmp_path / "state"
    server = Server(trace_root, "--state-dir", str(state))
    try:
        status, job = server.request(
            "POST", "/v1/sweeps", {"spec": SPEC, "trace_path": "t.jsonl"}
        )
        assert status == 202
        server.wait_job(job["job"], ("done",))
        assert server.terminate() == 0
    finally:
        server.cleanup()

    restarted = Server(trace_root, "--state-dir", str(state))
    try:
        assert not any("recovered" in l for l in restarted.banner)
        status, stats = restarted.request("GET", "/v1/stats")
        assert stats["journal"]["recovered_total"] == 0
        assert restarted.terminate() == 0
    finally:
        restarted.cleanup()
