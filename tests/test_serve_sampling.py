"""Serve API: the `sample` field on POST /v1/predict."""

import pytest

from repro.cli import main
from repro.serve import ApiError, ExtrapService
from repro.sweep.cache import ResultCache


@pytest.fixture(scope="module")
def trace_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-sampling")
    assert main(["trace", "matmul", "-n", "8", "-o", str(root / "m.jsonl.gz")]) == 0
    return root


@pytest.fixture
def service(trace_root, tmp_path):
    svc = ExtrapService(
        trace_root=trace_root,
        cache=ResultCache(tmp_path / "cache"),
        queue_depth=2,
        workers=1,
    )
    yield svc
    svc.close(drain=False, timeout=10)


def err(fn, *args):
    with pytest.raises(ApiError) as ei:
        fn(*args)
    return ei.value


def test_sampled_predict_marked_and_cached(service):
    body = {"trace_path": "m.jsonl.gz", "sample": {"seed": 0}}
    first = service.predict(body)
    assert first["cached"] is False
    assert first["metrics"]["estimated"] is True
    sampling = first["metrics"]["sampling"]
    assert sampling["events_simulated"] < sampling["events_total"]
    assert "sampling:" in first["report"]
    second = service.predict(body)
    assert second["cached"] is True
    assert second["metrics"] == first["metrics"]
    assert second["report"] == first["report"]


def test_sampled_key_differs_from_full(service):
    full = service.predict({"trace_path": "m.jsonl.gz"})
    sampled = service.predict({"trace_path": "m.jsonl.gz", "sample": {}})
    reseeded = service.predict(
        {"trace_path": "m.jsonl.gz", "sample": {"seed": 1}}
    )
    keys = {full["key"], sampled["key"], reseeded["key"]}
    assert len(keys) == 3
    assert "estimated" not in full["metrics"]


def test_full_predict_after_sampled_not_served_sampled(service):
    service.predict({"trace_path": "m.jsonl.gz", "sample": {}})
    full = service.predict({"trace_path": "m.jsonl.gz"})
    assert full["cached"] is False
    assert "estimated" not in full["metrics"]


def test_bad_sample_key_suggests(service):
    e = err(service.predict, {"trace_path": "m.jsonl.gz", "sample": {"seeed": 1}})
    assert e.status == 400
    assert "seeed" in e.message and "seed" in e.message


def test_sample_must_be_object(service):
    e = err(service.predict, {"trace_path": "m.jsonl.gz", "sample": 5})
    assert e.status == 400
    assert "object" in e.message


def test_sample_diagnose_conflict(service):
    e = err(
        service.predict,
        {"trace_path": "m.jsonl.gz", "sample": {}, "diagnose": True},
    )
    assert e.status == 400
    assert "diagnose" in e.message and "sample" in e.message
