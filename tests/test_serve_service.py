"""Serve service layer: validation contract, memoization, job queue."""

import threading
import time

import pytest

from repro.cli import main
from repro.serve import (
    ApiError,
    ExtrapService,
    JobQueue,
    QueueClosedError,
    QueueFullError,
)
from repro.sweep.cache import ResultCache
from repro.trace import read_trace


@pytest.fixture(scope="module")
def trace_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-traces")
    assert main(["trace", "embar", "-n", "4", "-o", str(root / "t.jsonl")]) == 0
    return root


@pytest.fixture
def service(trace_root, tmp_path):
    svc = ExtrapService(
        trace_root=trace_root,
        cache=ResultCache(tmp_path / "cache"),
        queue_depth=2,
        workers=1,
    )
    yield svc
    svc.close(drain=False, timeout=10)


def err(fn, *args):
    with pytest.raises(ApiError) as ei:
        fn(*args)
    return ei.value


# -- predict -----------------------------------------------------------------


def test_predict_miss_then_hit_identical(service):
    body = {"trace_path": "t.jsonl", "preset": "cm5"}
    first = service.predict(body)
    second = service.predict(body)
    assert first["cached"] is False
    assert second["cached"] is True
    assert first["metrics"] == second["metrics"]
    assert first["report"] == second["report"]
    assert first["key"] == second["key"]
    stats = service.stats()
    assert stats["cache"]["hits"] == 1
    assert stats["cache"]["misses"] == 1
    assert stats["cache"]["hit_rate"] == 0.5


def test_predict_report_matches_cli(service, trace_root, capsys):
    response = service.predict({"trace_path": "t.jsonl", "preset": "cm5"})
    assert main(["predict", str(trace_root / "t.jsonl"), "--preset", "cm5"]) == 0
    assert capsys.readouterr().out == response["report"] + "\n"


def test_predict_inline_trace_same_key_as_path(service, trace_root):
    trace = read_trace(trace_root / "t.jsonl")
    inline = {
        "meta": trace.meta.to_dict(),
        "events": [e.to_dict() for e in trace.events],
    }
    by_path = service.predict({"trace_path": "t.jsonl"})
    by_inline = service.predict({"trace": inline})
    assert by_inline["cached"] is True  # same digest, same params
    assert by_inline["key"] == by_path["key"]
    assert by_inline["metrics"] == by_path["metrics"]


def test_predict_overrides_change_key(service):
    base = service.predict({"trace_path": "t.jsonl"})
    tweaked = service.predict(
        {
            "trace_path": "t.jsonl",
            "overrides": {"processor.mips_ratio": 0.5},
        }
    )
    assert tweaked["key"] != base["key"]
    assert tweaked["cached"] is False


def test_predict_without_cache_never_cached(trace_root):
    svc = ExtrapService(trace_root=trace_root, cache=None)
    try:
        assert svc.predict({"trace_path": "t.jsonl"})["cached"] is False
        assert svc.predict({"trace_path": "t.jsonl"})["cached"] is False
        assert svc.stats()["cache"] == {"enabled": False}
    finally:
        svc.close(drain=False)


# -- validation contract -----------------------------------------------------


def test_predict_unknown_field_suggests(service):
    e = err(service.predict, {"trase_path": "t.jsonl"})
    assert e.status == 400
    assert "trase_path" in e.message
    assert "did you mean" in e.message


def test_predict_needs_a_trace(service):
    assert err(service.predict, {"preset": "cm5"}).status == 400


def test_predict_rejects_both_trace_forms(service):
    e = err(
        service.predict,
        {"trace_path": "t.jsonl", "trace": {"meta": {}, "events": [{}]}},
    )
    assert e.status == 400
    assert "not both" in e.message


def test_predict_bad_preset_suggests(service):
    e = err(service.predict, {"trace_path": "t.jsonl", "preset": "cm-5"})
    assert e.status == 400
    assert "cm5" in e.message


def test_predict_bad_override_field(service):
    e = err(
        service.predict,
        {"trace_path": "t.jsonl", "overrides": {"processor.nope": 1}},
    )
    assert e.status == 400
    assert "processor" in e.message


def test_predict_non_object_body(service):
    assert err(service.predict, [1, 2]).status == 400
    assert err(service.predict, None).status == 400


def test_predict_bad_wall_budget(service):
    e = err(service.predict, {"trace_path": "t.jsonl", "wall_budget": 0})
    assert e.status == 400


def test_predict_bad_inline_events(service):
    e = err(
        service.predict,
        {"trace": {"meta": {"program": "x", "n_threads": 1}, "events": ["no"]}},
    )
    assert e.status == 400
    assert "events[0]" in e.message


# -- trace_path hardening ----------------------------------------------------


def test_trace_path_absolute_rejected(service, trace_root):
    e = err(service.predict, {"trace_path": str(trace_root / "t.jsonl")})
    assert e.status == 400
    assert "absolute" in e.message


def test_trace_path_escape_rejected(service):
    e = err(service.predict, {"trace_path": "../../etc/passwd"})
    assert e.status == 400
    assert "escapes" in e.message


def test_trace_path_missing_is_404(service):
    assert err(service.predict, {"trace_path": "nope.jsonl"}).status == 404


def test_trace_path_symlink_escape_rejected(tmp_path, trace_root):
    outside = tmp_path / "outside.jsonl"
    outside.write_text("{}\n")
    root = tmp_path / "root"
    root.mkdir()
    link = root / "sneaky.jsonl"
    try:
        link.symlink_to(outside)
    except OSError:
        pytest.skip("filesystem does not support symlinks")
    svc = ExtrapService(trace_root=root, cache=None)
    try:
        e = err(svc.predict, {"trace_path": "sneaky.jsonl"})
        assert e.status == 400
        assert "escapes" in e.message
    finally:
        svc.close(drain=False)


# -- sweeps and jobs ---------------------------------------------------------

SPEC = {
    "name": "demo",
    "preset": "cm5",
    "grid": {"network.comm_startup_time": [50.0, 100.0]},
}


def wait_for(service, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = service.job_status(job_id)
        if status["status"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


def test_sweep_lifecycle(service):
    submitted = service.submit_sweep({"spec": SPEC, "trace_path": "t.jsonl"})
    assert submitted["status"] == "queued"
    assert submitted["points"] == 2
    job_id = submitted["job"]
    assert wait_for(service, job_id)["status"] == "done"
    result = service.job_result(job_id)
    artifact = result["result"]
    assert len(artifact["points"]) == 2
    assert artifact["counters"]["points_total"] == 2
    assert all("result" in p for p in artifact["points"])


def test_sweep_bad_spec_is_400(service):
    e = err(service.submit_sweep, {"spec": {"name": "x"}, "trace_path": "t.jsonl"})
    assert e.status == 400


def test_sweep_needs_trace_or_benchmark(service):
    e = err(service.submit_sweep, {"spec": SPEC})
    assert e.status == 400
    assert "benchmark" in e.message


def test_job_status_unknown_is_404(service):
    assert err(service.job_status, "j999999").status == 404
    assert err(service.job_result, "j999999").status == 404


def test_job_result_before_done_is_409(service):
    gate = threading.Event()
    job = service.jobs.submit("test", gate.wait)
    try:
        e = err(service.job_result, job.id)
        assert e.status == 409
    finally:
        gate.set()


def test_queue_overflow_sheds_503_with_retry_after(trace_root):
    """A saturated queue sheds with 503 (429 is the rate limiter's)."""
    from repro.serve.service import SHED_RETRY_AFTER_S

    svc = ExtrapService(trace_root=trace_root, cache=None, queue_depth=1, workers=1)
    try:
        gate = threading.Event()
        running = threading.Event()

        def blocker():
            running.set()
            gate.wait()

        svc.jobs.submit("test", blocker)
        assert running.wait(10), "worker never picked up the gate job"
        # The worker is busy; depth 1 admits exactly one queued sweep.
        svc.submit_sweep({"spec": SPEC, "trace_path": "t.jsonl"})
        e = err(svc.submit_sweep, {"spec": SPEC, "trace_path": "t.jsonl"})
        assert e.status == 503
        assert "retry" in e.message
        assert e.retry_after == SHED_RETRY_AFTER_S
        assert svc.stats()["admission"]["shed_total"] == 1
        gate.set()
    finally:
        svc.close(drain=False, timeout=10)


def test_failed_job_result_is_500_one_line(service):
    def boom():
        raise RuntimeError("sim exploded\nwith details")

    job = service.jobs.submit("test", boom)
    status = wait_for(service, job.id)
    assert status["status"] == "failed"
    assert status["error"]["type"] == "RuntimeError"
    e = err(service.job_result, job.id)
    assert e.status == 500
    assert "\n" not in e.message.replace("sim exploded\nwith details", "X")


# -- JobQueue ----------------------------------------------------------------


def test_job_queue_drains_on_close():
    q = JobQueue(depth=8, workers=2)
    done = []
    for i in range(6):
        q.submit("test", lambda i=i: done.append(i))
    q.close(drain=True, timeout=30)
    assert sorted(done) == list(range(6))
    with pytest.raises(QueueClosedError):
        q.submit("test", lambda: None)


def test_job_queue_nodrain_cancels_queued():
    q = JobQueue(depth=8, workers=1)
    gate = threading.Event()
    running = threading.Event()
    q.submit("test", lambda: (running.set(), gate.wait()))
    assert running.wait(10)
    queued = [q.submit("test", lambda: None) for _ in range(3)]
    gate.set()
    q.close(drain=False, timeout=30)
    counts = q.counts()
    assert counts["cancelled"] == 3
    assert all(q.get(j.id).status == "cancelled" for j in queued)


def test_job_queue_depth_limit():
    q = JobQueue(depth=2, workers=1)
    gate = threading.Event()
    running = threading.Event()
    q.submit("test", lambda: (running.set(), gate.wait()))
    assert running.wait(10)
    q.submit("test", lambda: None)
    q.submit("test", lambda: None)
    with pytest.raises(QueueFullError):
        q.submit("test", lambda: None)
    gate.set()
    q.close(drain=True, timeout=30)


def test_watchdog_fails_stalled_job_and_replaces_worker():
    """A wedged job turns into a JobStalled failure, not a dead worker."""
    q = JobQueue(depth=8, workers=1, job_budget=0.15)
    gate = threading.Event()
    try:
        stuck = q.submit("test", gate.wait)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and stuck.status != "failed":
            time.sleep(0.02)
        assert stuck.status == "failed"
        assert stuck.error_type == "JobStalled"
        assert "wall budget" in stuck.error
        # The replacement worker restores capacity: later jobs still run.
        after = q.submit("test", lambda: "alive")
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and after.status != "done":
            time.sleep(0.02)
        assert after.status == "done"
        assert after.result == "alive"
    finally:
        gate.set()  # let the abandoned thread retire
        q.close(drain=True, timeout=30)


def test_watchdog_late_result_is_dropped():
    """A job that finishes after being abandoned stays failed."""
    q = JobQueue(depth=8, workers=1, job_budget=0.15)
    gate = threading.Event()
    try:
        stuck = q.submit("test", lambda: (gate.wait(), "late")[1])
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and stuck.status != "failed":
            time.sleep(0.02)
        assert stuck.status == "failed"
        gate.set()  # the wedged fn now returns — too late
        time.sleep(0.2)
        assert stuck.status == "failed"
        assert stuck.result is None
    finally:
        gate.set()
        q.close(drain=True, timeout=30)


def test_watchdog_leaves_fast_jobs_alone():
    q = JobQueue(depth=8, workers=2, job_budget=5.0)
    try:
        jobs = [q.submit("test", lambda i=i: i) for i in range(4)]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and any(
            j.status != "done" for j in jobs
        ):
            time.sleep(0.02)
        assert [j.result for j in jobs] == [0, 1, 2, 3]
    finally:
        q.close(drain=True, timeout=30)


def test_job_budget_validation():
    with pytest.raises(ValueError):
        JobQueue(depth=1, workers=1, job_budget=0)


def test_stats_shape(service):
    stats = service.stats()
    assert stats["uptime_s"] >= 0
    assert set(stats["jobs"]) == {
        "queued", "running", "done", "failed", "cancelled", "interrupted",
        "queue_depth_limit", "run_seconds",
    }
    assert stats["admission"] == {
        "rate_limit": {"enabled": False},
        "rate_limited_total": 0,
        "shed_total": 0,
    }
    assert stats["journal"] == {"enabled": False}
    service.count_request("predict")
    assert service.stats()["requests"]["predict"] == 1
