"""Trace -> replay action conversion."""

import pytest

from repro.sim.actions import Action, ActionKind, actions_from_thread_trace
from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import ThreadTrace

E = EventKind
A = ActionKind


def test_basic_conversion():
    tt = ThreadTrace(
        0,
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(10.0, 0, E.REMOTE_READ, owner=1, nbytes=64, collection="c"),
            TraceEvent(15.0, 0, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(40.0, 0, E.BARRIER_EXIT, barrier_id=0),
            TraceEvent(41.0, 0, E.MARK, tag="m"),
            TraceEvent(41.0, 0, E.THREAD_END),
        ],
    )
    actions = actions_from_thread_trace(tt)
    kinds = [a.kind for a in actions]
    assert kinds == [
        A.COMPUTE,       # 0 -> 10
        A.REMOTE_READ,
        A.COMPUTE,       # 10 -> 15
        A.BARRIER,
        A.COMPUTE,       # 40 -> 41 (post-exit compute)
        A.MARK,
        A.END,
    ]
    assert actions[0].duration == 10.0
    assert actions[1].owner == 1 and actions[1].nbytes == 64
    assert actions[3].barrier_id == 0
    assert actions[4].duration == 1.0
    assert actions[5].label == "m"


def test_barrier_wait_gap_dropped():
    """The enter -> exit gap is synchronisation wait, not compute."""
    tt = ThreadTrace(
        0,
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(5.0, 0, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(100.0, 0, E.BARRIER_EXIT, barrier_id=0),
            TraceEvent(100.0, 0, E.THREAD_END),
        ],
    )
    actions = actions_from_thread_trace(tt)
    computes = [a for a in actions if a.kind is A.COMPUTE]
    assert len(computes) == 1 and computes[0].duration == 5.0


def test_zero_gaps_skipped():
    tt = ThreadTrace(
        0,
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(0.0, 0, E.REMOTE_WRITE, owner=1, nbytes=8),
            TraceEvent(0.0, 0, E.THREAD_END),
        ],
    )
    actions = actions_from_thread_trace(tt)
    assert [a.kind for a in actions] == [A.REMOTE_WRITE, A.END]


def test_backwards_time_rejected():
    tt = ThreadTrace(
        0,
        [
            TraceEvent(5.0, 0, E.THREAD_BEGIN),
            TraceEvent(1.0, 0, E.THREAD_END),
        ],
    )
    with pytest.raises(ValueError, match="backwards"):
        actions_from_thread_trace(tt)


def test_empty_trace():
    assert actions_from_thread_trace(ThreadTrace(0, [])) == []
