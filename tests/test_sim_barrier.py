"""Barrier models: protocol correctness and cost relations."""

import pytest

from repro.core.parameters import BarrierParams
from repro.core import presets
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.sim.barrier import BarrierCoordinator
from repro.sim.simulator import simulate
from repro.des import Environment


def barrier_only_program(n, iters=1, skew=100.0):
    def factory(rt):
        def body(ctx):
            for it in range(iters):
                yield from ctx.compute_us(skew * (ctx.tid + 1))
                yield from ctx.barrier()

        return body

    return factory


def run_with(n, barrier_overrides, iters=1):
    tp = translate(measure(barrier_only_program(n, iters), n, name="b"))
    params = presets.distributed_memory().with_(barrier=barrier_overrides)
    return simulate(tp, params)


def test_tree_children_parent():
    env = Environment()
    c = BarrierCoordinator(env, 8, BarrierParams())
    assert c.tree_children(0) == [1, 2, 4]
    assert c.tree_children(4) == [5, 6]
    assert c.tree_children(2) == [3]
    assert c.tree_children(1) == []
    assert c.tree_parent(5) == 4
    assert c.tree_parent(6) == 4
    assert c.tree_parent(4) == 0
    with pytest.raises(ValueError):
        c.tree_parent(0)


def test_tree_children_non_power_of_two():
    env = Environment()
    c = BarrierCoordinator(env, 6, BarrierParams())
    assert c.tree_children(0) == [1, 2, 4]
    assert c.tree_children(4) == [5]
    # Every node except the root appears exactly once as a child.
    seen = [ch for p in range(6) for ch in c.tree_children(p)]
    assert sorted(seen) == [1, 2, 3, 4, 5]


@pytest.mark.parametrize("n", [1, 2, 5, 8])
@pytest.mark.parametrize(
    "overrides",
    [
        {"algorithm": "linear", "by_msgs": True},
        {"algorithm": "linear", "by_msgs": False},
        {"algorithm": "log", "by_msgs": True},
        {"algorithm": "log", "by_msgs": False},
        {"algorithm": "hardware"},
    ],
)
def test_all_barrier_configs_complete(n, overrides):
    res = run_with(n, overrides, iters=2)
    assert res.barrier_count == 2
    assert res.execution_time > 0


def test_no_thread_exits_before_last_entry():
    res = run_with(4, {"algorithm": "linear", "by_msgs": True})
    from repro.trace.events import EventKind

    enters, exits = [], []
    for tt in res.threads:
        for e in tt.events:
            if e.kind == EventKind.BARRIER_ENTER:
                enters.append(e.time)
            elif e.kind == EventKind.BARRIER_EXIT:
                exits.append(e.time)
    assert min(exits) >= max(enters)


def test_hardware_faster_than_linear():
    lin = run_with(8, {"algorithm": "linear"}).execution_time
    hw = run_with(8, {"algorithm": "hardware"}).execution_time
    assert hw < lin


def test_log_beats_linear_for_simultaneous_arrivals():
    """The tree pays its depth but removes the master's serial arrival
    processing — it wins when arrivals bunch up and checks are costly
    (with skewed arrivals the linear master hides its checks in the
    wait, which is why the paper can call linear an upper bound yet
    still usable)."""
    n = 16

    def factory(rt):
        def body(ctx):
            yield from ctx.compute_us(100.0)  # everyone arrives together
            yield from ctx.barrier()

        return body

    tp = translate(measure(factory, n, name="b"))
    base = presets.distributed_memory()
    lin = simulate(
        tp, base.with_(barrier={"algorithm": "linear", "check_time": 50.0})
    ).execution_time
    log_ = simulate(
        tp, base.with_(barrier={"algorithm": "log", "check_time": 50.0})
    ).execution_time
    assert log_ < lin


def test_barrier_message_sizes_on_wire():
    res = run_with(4, {"algorithm": "linear", "by_msgs": True, "msg_size": 256})
    assert res.network.by_kind["barrier_arrive"] == 3
    assert res.network.by_kind["barrier_release"] == 3


def test_zero_cost_barrier_is_free():
    zero = {
        "entry_time": 0.0,
        "exit_time": 0.0,
        "check_time": 0.0,
        "exit_check_time": 0.0,
        "model_time": 0.0,
        "by_msgs": False,
    }
    tp = translate(measure(barrier_only_program(4), 4, name="b"))
    params = presets.ideal().with_(barrier=zero)
    res = simulate(tp, params)
    assert res.execution_time == pytest.approx(tp.ideal_execution_time())


def test_master_check_cost_scales_linearly():
    """Linear barrier: the master consumes n-1 arrivals at check_time each."""
    small = run_with(4, {"check_time": 50.0, "model_time": 0.0})
    big = run_with(8, {"check_time": 50.0, "model_time": 0.0})
    # 3 vs 7 checks of 50us on the critical path (plus smaller terms).
    assert big.execution_time - small.execution_time > 2.5 * 50.0
