"""The multi-cluster network (shared memory within, messages between)."""

import pytest

from repro.core.parameters import NetworkParams, SimulationParameters
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.des import Environment
from repro.pcxx import Collection, make_distribution
from repro.sim.cluster import ClusterNetwork
from repro.sim.messages import Message, MsgKind
from repro.sim.simulator import Simulator


def test_membership():
    env = Environment()
    net = ClusterNetwork(env, 8, NetworkParams(), cluster_size=4)
    assert net.cluster_of(0) == 0
    assert net.cluster_of(3) == 0
    assert net.cluster_of(4) == 1
    assert net.same_cluster(1, 2)
    assert not net.same_cluster(3, 4)


def test_bad_cluster_size():
    with pytest.raises(ValueError):
        ClusterNetwork(Environment(), 8, NetworkParams(), cluster_size=0)


def test_intra_cluster_is_cheaper():
    env = Environment()
    net = ClusterNetwork(
        env,
        8,
        NetworkParams(comm_startup_time=100.0, byte_transfer_time=0.05),
        cluster_size=4,
    )
    assert net.startup_time(0, 1) < net.startup_time(0, 5)
    intra = net.wire_time(Message(MsgKind.REQUEST, src=0, dst=1, nbytes=1000))
    inter = net.wire_time(Message(MsgKind.REQUEST, src=0, dst=5, nbytes=1000))
    assert intra < inter


def neighbour_program(rt):
    n = rt.n_threads
    coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
    for i in range(n):
        coll.poke(i, i)

    def body(ctx):
        yield from ctx.compute_us(100.0)
        yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=64)
        yield from ctx.barrier()

    return body


def clustered_sim(cluster_size):
    n = 8
    tp = translate(measure(neighbour_program, n, name="nb"))
    params = SimulationParameters()

    def factory(env, n_, net_params):
        return ClusterNetwork(env, n_, net_params, cluster_size=cluster_size)

    return Simulator(tp, params, network_factory=factory).run()


def test_clustering_speeds_up_neighbour_exchange():
    """Nearest-neighbour reads mostly stay inside clusters of 4, so the
    clustered run beats the fully-distributed (cluster_size=1) run."""
    all_remote = clustered_sim(1).execution_time
    clustered = clustered_sim(4).execution_time
    assert clustered < all_remote


def test_full_machine_cluster_is_fastest():
    one_cluster = clustered_sim(8).execution_time
    clustered = clustered_sim(4).execution_time
    assert one_cluster <= clustered
