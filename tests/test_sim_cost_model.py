"""Exact cost-model arithmetic on hand-computed scenarios.

These tests pin the simulator's timing equations (documented in
docs/ARCHITECTURE.md) against closed-form expectations, so any change to
where a microsecond is charged shows up as a precise failure.
"""

import pytest

from repro.core.parameters import (
    BarrierParams,
    NetworkParams,
    ProcessorParams,
    SimulationParameters,
)
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.pcxx import Collection, make_distribution
from repro.sim.simulator import simulate

# Flat, easily summed parameters.
PP = dict(
    mips_ratio=1.0,
    policy="no_interrupt",
    request_service_time=7.0,
    msg_build_time=3.0,
    interrupt_overhead=0.0,
)
NW = dict(
    comm_startup_time=11.0,
    byte_transfer_time=0.1,
    topology="crossbar",
    hop_time=2.0,
    contention=False,
    request_nbytes=16,
    header_nbytes=8,
)
BARRIER_FREE = dict(
    entry_time=0.0,
    exit_time=0.0,
    check_time=0.0,
    exit_check_time=0.0,
    model_time=0.0,
    by_msgs=False,
    msg_size=0,
)


def params():
    return SimulationParameters(
        processor=ProcessorParams(**PP),
        network=NetworkParams(**NW),
        barrier=BarrierParams(**BARRIER_FREE),
    )


def one_read_program(nbytes):
    def factory(rt):
        coll = Collection("c", make_distribution(2, 2, "block"), element_nbytes=4096)
        coll.poke(0, 0.0)
        coll.poke(1, 1.0)

        def body(ctx):
            if ctx.tid == 0:
                yield from ctx.get(coll, 1, nbytes=nbytes)
            yield from ctx.barrier()

        return body

    return factory


def wire(payload):
    """(payload + header) * byte_time + hops * hop_time on a crossbar."""
    return (payload + NW["header_nbytes"]) * NW["byte_transfer_time"] + 1 * NW["hop_time"]


def test_single_remote_read_round_trip():
    """requester: build + startup; wire(request); owner (idle, waiting at
    the free barrier): service + build + startup; wire(reply)."""
    nbytes = 100
    tp = translate(measure(one_read_program(nbytes), 2, name="one", size_mode="actual"))
    res = simulate(tp, params())
    send = PP["msg_build_time"] + NW["comm_startup_time"]
    expected = (
        send  # request construction + startup
        + wire(NW["request_nbytes"])  # request transit
        + PP["request_service_time"]
        + send  # reply construction + startup
        + wire(nbytes)  # reply transit
    )
    assert res.execution_time == pytest.approx(expected)


def test_round_trip_scales_linearly_in_reply_bytes():
    t100 = simulate(
        translate(measure(one_read_program(100), 2, name="o", size_mode="actual")), params()
    ).execution_time
    t1100 = simulate(
        translate(measure(one_read_program(1100), 2, name="o", size_mode="actual")), params()
    ).execution_time
    assert t1100 - t100 == pytest.approx(1000 * NW["byte_transfer_time"])


def test_owner_busy_compute_delays_reply_exactly():
    """Owner computes 500us under no-interrupt: the reply is serviced
    when the owner reaches its (free) barrier wait."""

    def factory(rt):
        coll = Collection("c", make_distribution(2, 2, "block"), element_nbytes=64)
        coll.poke(0, 0.0)
        coll.poke(1, 1.0)

        def body(ctx):
            if ctx.tid == 0:
                yield from ctx.get(coll, 1, nbytes=100)
            else:
                yield from ctx.compute_us(500.0)
            yield from ctx.barrier()

        return body

    tp = translate(measure(factory, 2, name="busy", size_mode="actual"))
    res = simulate(tp, params())
    send = PP["msg_build_time"] + NW["comm_startup_time"]
    # Owner starts serving at t=500 regardless of when the request landed.
    expected = 500.0 + PP["request_service_time"] + send + wire(100)
    assert res.execution_time == pytest.approx(expected)


def test_contention_multiplier_arithmetic():
    """Two simultaneous sends on a bus: the second pays the multiplier
    1 + factor * in_flight / bisection with bisection(bus) = 1."""

    def factory(rt):
        n = 4
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            if ctx.tid in (0, 1):
                yield from ctx.get(coll, ctx.tid + 2, nbytes=1000)
            yield from ctx.barrier()

        return body

    base = params().with_(
        network={"topology": "bus", "hop_time": 0.0, "contention": True,
                 "contention_factor": 1.0}
    )
    tp = translate(measure(factory, 4, name="cont", size_mode="actual"))
    res = simulate(tp, base)
    # Both requests inject at the same instant (after identical build+
    # startup): the first sees 0 in flight, the second sees 1 and pays
    # double wire time on its request.
    assert res.network.total_contention_delay > 0
    expected_extra = (NW["request_nbytes"] + NW["header_nbytes"]) * NW[
        "byte_transfer_time"
    ]
    # The replies may also overlap; at minimum the request-side extra
    # appears in the accounted contention delay.
    assert res.network.total_contention_delay >= expected_extra - 1e-9


def test_barrier_table1_linear_cost():
    """n=2, msg-mode linear barrier with simultaneous arrival: slave
    sends arrive (wire only), master checks, models, releases (wire),
    both exit."""
    barrier = dict(
        entry_time=5.0,
        exit_time=5.0,
        check_time=2.0,
        exit_check_time=2.0,
        model_time=10.0,
        by_msgs=True,
        msg_size=128,
    )

    def factory(rt):
        def body(ctx):
            yield from ctx.barrier()

        return body

    p = params().with_(barrier=barrier)
    tp = translate(measure(factory, 2, name="b"))
    res = simulate(tp, p)
    arrive_wire = wire(128)
    # slave: entry(5) + [wire] ... master: entry(5) overlaps; after the
    # arrival lands the master checks (2), models (10), releases (wire),
    # slave exits (5). Critical path through the slave:
    expected = 5.0 + arrive_wire + 2.0 + 10.0 + arrive_wire + 5.0
    assert res.execution_time == pytest.approx(expected)


def test_mips_ratio_exact_scaling_with_fixed_comm():
    def factory(rt):
        coll = Collection("c", make_distribution(2, 2, "block"), element_nbytes=64)
        coll.poke(0, 0.0)
        coll.poke(1, 1.0)

        def body(ctx):
            yield from ctx.compute_us(100.0)
            if ctx.tid == 0:
                yield from ctx.get(coll, 1, nbytes=10)
            yield from ctx.barrier()

        return body

    tp = translate(measure(factory, 2, name="m", size_mode="actual"))
    t1 = simulate(tp, params()).execution_time
    t2 = simulate(
        tp, params().with_(processor={"mips_ratio": 2.0})
    ).execution_time
    # Only the 100us compute scales; communication is unchanged.
    assert t2 - t1 == pytest.approx(100.0)
