"""The multithreaded-processor extension (n threads on m processors)."""

import pytest

from repro.core import presets
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.pcxx import Collection, make_distribution
from repro.sim.multithread import (
    assign_threads,
    simulate_multithreaded,
)


def program(rt):
    n = rt.n_threads
    coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
    for i in range(n):
        coll.poke(i, i)

    def body(ctx):
        for it in range(2):
            yield from ctx.compute_us(500.0)
            if n > 1:
                yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
            yield from ctx.barrier()

    return body


def tp(n=8):
    return translate(measure(program, n, name="mt"))


def test_assignment_block():
    assert assign_threads(8, 2, "block") == [0, 0, 0, 0, 1, 1, 1, 1]
    assert assign_threads(6, 4, "block") == [0, 0, 1, 1, 2, 2]


def test_assignment_cyclic():
    assert assign_threads(8, 2, "cyclic") == [0, 1, 0, 1, 0, 1, 0, 1]


def test_assignment_validation():
    with pytest.raises(ValueError):
        assign_threads(4, 8)  # m > n
    with pytest.raises(ValueError):
        assign_threads(4, 0)
    with pytest.raises(ValueError):
        assign_threads(4, 2, "random")


def test_single_processor_serialises_everything():
    t = tp(4)
    res = simulate_multithreaded(t, presets.distributed_memory(), 1)
    # Everything is local on one processor: no network traffic.
    assert res.messages == 0
    # All compute serialised: at least the sum of all compute phases.
    assert res.execution_time >= t.total_compute_time()


def test_full_width_close_to_singlethread_model():
    """m == n should land in the same regime as the per-processor
    simulator (coarser service model, so not exactly equal)."""
    from repro.sim.simulator import simulate

    t = tp(8)
    mt = simulate_multithreaded(t, presets.distributed_memory(), 8)
    st = simulate(t, presets.distributed_memory())
    assert mt.execution_time == pytest.approx(st.execution_time, rel=0.5)


def test_more_processors_never_lose_big_on_compute_bound():
    def compute_only(rt):
        def body(ctx):
            yield from ctx.compute_us(2000.0)
            yield from ctx.barrier()

        return body

    t = translate(measure(compute_only, 8, name="c"))
    times = {
        m: simulate_multithreaded(t, presets.distributed_memory(), m).execution_time
        for m in (1, 2, 4, 8)
    }
    assert times[8] < times[4] < times[2] < times[1]
    # Perfect strong scaling on pure compute (up to barrier costs).
    assert times[1] / times[8] > 6


def test_same_processor_access_is_local():
    t = tp(8)
    res = simulate_multithreaded(
        t, presets.distributed_memory(), 4, assignment_scheme="block"
    )
    # Neighbour reads (tid+1): 3/4 of them stay inside a block of 2...
    local = sum(p.local_requests for p in res.processors)
    served = sum(p.requests_served for p in res.processors)
    assert local > 0
    assert local + served == 8 * 2  # every read accounted once


def test_cyclic_assignment_changes_locality():
    t = tp(8)
    block = simulate_multithreaded(
        t, presets.distributed_memory(), 4, assignment_scheme="block"
    )
    cyc = simulate_multithreaded(
        t, presets.distributed_memory(), 4, assignment_scheme="cyclic"
    )
    # Neighbour communication: block packing keeps some reads local;
    # cyclic assignment makes every (tid+1) read remote.
    assert sum(p.local_requests for p in cyc.processors) == 0
    assert sum(p.local_requests for p in block.processors) > 0
    assert cyc.messages > block.messages


def test_run_twice_rejected():
    from repro.sim.multithread import MultithreadSimulator

    sim = MultithreadSimulator(tp(4), presets.distributed_memory(), 2)
    sim.run()
    with pytest.raises(RuntimeError):
        sim.run()


def test_cluster_network_in_multithread_model():
    """Multithreaded processors grouped into shared-memory clusters:
    the §3.3.1 extension composed with the §3.3.2 cluster model."""
    from repro.sim.cluster import ClusterNetwork
    from repro.sim.multithread import MultithreadSimulator

    t = tp(8)

    def clustered(env, m, net_params):
        return ClusterNetwork(env, m, net_params, cluster_size=2)

    flat = simulate_multithreaded(t, presets.distributed_memory(), 4)
    clus = MultithreadSimulator(
        t, presets.distributed_memory(), 4, network_factory=clustered
    ).run()
    # Neighbouring processors now talk through shared memory: never slower.
    assert clus.execution_time <= flat.execution_time


def test_utilization_bounds():
    res = simulate_multithreaded(tp(8), presets.distributed_memory(), 4)
    assert 0.0 < res.utilization() <= 1.0
    assert len(res.thread_end_times) == 8
    assert res.execution_time == max(res.thread_end_times)
