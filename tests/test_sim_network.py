"""The remote data access / network model."""

import pytest

from repro.core.parameters import NetworkParams
from repro.des import Environment
from repro.sim.messages import Message, MsgKind
from repro.sim.network import Network


def make_net(n=4, **kw):
    env = Environment()
    net = Network(env, n, NetworkParams(**kw))
    inboxes = [[] for _ in range(n)]
    net.attach([inboxes[i].append for i in range(n)])
    return env, net, inboxes


def test_wire_time_components():
    env, net, _ = make_net(
        comm_startup_time=0.0,
        byte_transfer_time=0.1,
        hop_time=1.0,
        header_nbytes=8,
        topology="crossbar",
        contention=False,
    )
    msg = Message(MsgKind.REQUEST, src=0, dst=1, nbytes=92)
    # (92 + 8) * 0.1 + 1 hop * 1.0
    assert net.wire_time(msg) == pytest.approx(11.0)


def test_delivery_after_transit():
    env, net, inboxes = make_net(
        byte_transfer_time=0.1, hop_time=0.0, header_nbytes=0, contention=False
    )
    transit = net.send(Message(MsgKind.REQUEST, src=0, dst=2, nbytes=100))
    assert transit == pytest.approx(10.0)
    env.run(until=9.9)
    assert inboxes[2] == []
    env.run(until=10.1)
    assert len(inboxes[2]) == 1


def test_contention_multiplier_grows_with_in_flight():
    env, net, _ = make_net(
        byte_transfer_time=0.01,
        hop_time=0.0,
        topology="bus",  # bisection 1: maximum sensitivity
        contention=True,
        contention_factor=1.0,
    )
    assert net.contention_multiplier() == 1.0
    t1 = net.send(Message(MsgKind.REQUEST, src=0, dst=1, nbytes=1000))
    # second message while the first is in flight costs more
    t2 = net.send(Message(MsgKind.REQUEST, src=2, dst=3, nbytes=1000))
    assert t2 > t1
    env.run(None)
    assert net.contention_multiplier() == 1.0  # drained


def test_contention_disabled():
    env, net, _ = make_net(contention=False, topology="bus", byte_transfer_time=0.01)
    net.send(Message(MsgKind.REQUEST, src=0, dst=1, nbytes=1000))
    assert net.contention_multiplier() == 1.0


def test_message_to_self_rejected():
    env, net, _ = make_net()
    with pytest.raises(ValueError):
        net.send(Message(MsgKind.REQUEST, src=1, dst=1, nbytes=4))


def test_unattached_network_rejected():
    env = Environment()
    net = Network(env, 2, NetworkParams())
    with pytest.raises(RuntimeError):
        net.send(Message(MsgKind.REQUEST, src=0, dst=1, nbytes=4))


def test_stats():
    env, net, _ = make_net(contention=False)
    net.send(Message(MsgKind.REQUEST, src=0, dst=1, nbytes=10))
    net.send(Message(MsgKind.REPLY, src=1, dst=0, nbytes=30))
    env.run(None)
    assert net.stats.messages == 2
    assert net.stats.bytes == 40
    assert net.stats.by_kind == {"request": 1, "reply": 1}
    assert net.stats.max_in_flight >= 1
    assert net.stats.mean_wire_time > 0


def test_attach_wrong_count():
    env = Environment()
    net = Network(env, 3, NetworkParams())
    with pytest.raises(ValueError):
        net.attach([lambda m: None])
