"""Processor-mapping extrapolation (the §2 placement axis)."""

import pytest

from repro.core import presets
from repro.core.parameters import NetworkParams
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.des import Environment
from repro.pcxx import Collection, make_distribution
from repro.sim.messages import Message, MsgKind
from repro.sim.network import Network
from repro.sim.simulator import simulate


def ring_program(rt):
    """Each thread repeatedly reads its +1 neighbour: ring traffic."""
    n = rt.n_threads
    coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
    for i in range(n):
        coll.poke(i, i)

    def body(ctx):
        for _ in range(4):
            yield from ctx.compute_us(50.0)
            yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=64)
            yield from ctx.barrier()

    return body


def test_placement_validation():
    env = Environment()
    with pytest.raises(ValueError, match="permutation"):
        Network(env, 4, NetworkParams(), placement=[0, 1, 1, 2])
    with pytest.raises(ValueError, match="permutation"):
        Network(env, 4, NetworkParams(), placement=[0, 1, 2])


def test_identity_placement_is_default():
    env = Environment()
    net = Network(env, 4, NetworkParams())
    assert net.placement == [0, 1, 2, 3]


def test_placement_changes_hop_costs():
    env = Environment()
    params = NetworkParams(topology="ring", hop_time=10.0, contention=False)
    identity = Network(env, 8, params)
    # Reverse placement: logical neighbours land far apart... except a
    # reversed ring is still a ring; use a shuffle that breaks adjacency.
    shuffled = Network(env, 8, params, placement=[0, 4, 1, 5, 2, 6, 3, 7])
    msg = Message(MsgKind.REQUEST, src=0, dst=1, nbytes=8)
    t_id = identity.wire_time(msg)
    msg2 = Message(MsgKind.REQUEST, src=0, dst=1, nbytes=8)
    t_sh = shuffled.wire_time(msg2)
    assert t_sh > t_id  # logical neighbours are 4 hops apart physically


def test_bad_placement_slows_ring_traffic():
    """Ring traffic on a ring topology: the natural placement beats an
    adjacency-breaking shuffle — extrapolation exposes mapping quality."""
    n = 8
    tp = translate(measure(ring_program, n, name="ring"))
    params = presets.distributed_memory().with_(
        network={"topology": "ring", "hop_time": 20.0}
    )
    good = simulate(tp, params).execution_time
    bad = simulate(
        tp, params, placement=[0, 4, 1, 5, 2, 6, 3, 7]
    ).execution_time
    assert bad > good


def test_placement_irrelevant_on_crossbar():
    n = 8
    tp = translate(measure(ring_program, n, name="ring"))
    params = presets.distributed_memory().with_(network={"topology": "crossbar"})
    a = simulate(tp, params).execution_time
    b = simulate(tp, params, placement=list(reversed(range(n)))).execution_time
    assert a == pytest.approx(b)


def test_placement_with_factory_rejected():
    tp = translate(measure(ring_program, 4, name="ring"))
    from repro.sim.simulator import Simulator

    with pytest.raises(ValueError, match="network_factory"):
        Simulator(
            tp,
            presets.distributed_memory(),
            network_factory=lambda env, n, p: Network(env, n, p),
            placement=[3, 2, 1, 0],
        )
