"""Processor model specifics: policy timing, serving while waiting."""

import pytest

from repro.core import presets
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.pcxx import Collection, make_distribution
from repro.sim.simulator import simulate


def two_phase_program(n=2, owner_work=2000.0):
    """Thread 1 computes long; thread 0 immediately reads from thread 1.

    Thread 0's read lands while thread 1 is mid-compute, making the reply
    latency depend purely on thread 1's service policy.
    """

    def factory(rt):
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            if ctx.tid == 0:
                yield from ctx.compute_us(10.0)
                yield from ctx.get(coll, 1, nbytes=8)
            else:
                yield from ctx.compute_us(owner_work)
            yield from ctx.barrier()

        return body

    return factory


def run_policy(policy, poll_interval=100.0, owner_work=2000.0):
    tp = translate(measure(two_phase_program(owner_work=owner_work), 2, name="p"))
    params = presets.distributed_memory().with_(
        processor={"policy": policy, "poll_interval": poll_interval}
    )
    return simulate(tp, params)


def reply_wait(res):
    return res.processors[0].comm_wait


def test_no_interrupt_waits_out_the_owner_compute():
    res = run_policy("no_interrupt")
    # The reply comes only when thread 1 reaches the barrier (~2000us in).
    assert reply_wait(res) > 1500.0


def test_interrupt_replies_quickly():
    res = run_policy("interrupt")
    assert reply_wait(res) < 500.0
    assert res.processors[1].interrupts >= 1


def test_poll_bounded_by_interval():
    fast = run_policy("poll", poll_interval=50.0)
    slow = run_policy("poll", poll_interval=1000.0)
    assert reply_wait(fast) < reply_wait(slow)
    assert fast.processors[1].polls > slow.processors[1].polls


def test_poll_overhead_accumulates():
    res = run_policy("poll", poll_interval=50.0)
    p1 = res.processors[1]
    assert p1.categories["poll_overhead"] == pytest.approx(
        p1.polls * presets.distributed_memory().processor.poll_overhead
    )


def test_interrupt_overhead_charged():
    res = run_policy("interrupt")
    p1 = res.processors[1]
    assert p1.categories["interrupt_overhead"] == pytest.approx(
        p1.interrupts * presets.distributed_memory().processor.interrupt_overhead
    )


def test_interrupted_compute_duration_preserved():
    """Interrupts delay but never shorten the computation itself."""
    res = run_policy("interrupt")
    p1 = res.processors[1]
    # mips_ratio 1.0: the full 2000us of compute must be accounted.
    assert p1.categories["compute"] == pytest.approx(2000.0, rel=1e-6)


def test_requests_served_while_waiting_at_barrier():
    """An early-finishing processor still answers requests (the paper's
    requirement that remote accesses are serviced at barriers)."""

    def factory(rt):
        n = 2
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            if ctx.tid == 0:
                yield from ctx.barrier()  # waits at the barrier immediately
            else:
                yield from ctx.compute_us(500.0)
                yield from ctx.get(coll, 0, nbytes=8)  # owner is at barrier
                yield from ctx.barrier()

        return body

    tp = translate(measure(factory, 2, name="w"))
    params = presets.distributed_memory().with_(
        processor={"policy": "no_interrupt"}
    )
    res = simulate(tp, params)
    assert res.processors[0].requests_served == 1
    # The reply must have come long before thread 1's barrier wait ended.
    assert res.processors[1].comm_wait < 400.0


def test_finished_processor_keeps_serving():
    """Thread 0 finishes instantly but must still answer thread 1."""

    def factory(rt):
        n = 2
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            if ctx.tid == 1:
                yield from ctx.compute_us(1000.0)
                yield from ctx.get(coll, 0, nbytes=8)
            # note: no barrier — thread 0 ends immediately.

        return body

    tp = translate(measure(factory, 2, name="f"))
    res = simulate(tp, presets.distributed_memory())
    assert res.processors[0].requests_served == 1
    assert res.processors[1].remote_accesses == 1
