"""SimulationResult aggregates and reports."""

import pytest

from repro.core import presets
from repro.core.pipeline import measure_and_extrapolate
from repro.pcxx import Collection, make_distribution
from repro.sim.result import CATEGORIES, ProcessorStats


def outcome(n=4):
    def program(rt):
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            yield from ctx.compute_us(1000.0)
            if n > 1:
                yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=16)
            yield from ctx.barrier()

        return body

    return measure_and_extrapolate(program, n, presets.distributed_memory(), name="r")


def test_processor_stats_add():
    st = ProcessorStats(pid=3)
    st.add("compute", 5.0)
    st.add("service", 2.0)
    assert st.busy_total == 7.0
    assert st.compute_time == 5.0
    assert set(st.categories) == set(CATEGORIES)


def test_comm_and_barrier_time():
    st = ProcessorStats()
    st.add("comm_overhead", 3.0)
    st.add("service", 2.0)
    st.comm_wait = 5.0
    st.add("barrier_overhead", 1.0)
    st.barrier_wait = 4.0
    assert st.comm_time == 10.0
    assert st.barrier_time == 5.0


def test_idle_fraction():
    st = ProcessorStats()
    st.end_time = 100.0
    st.comm_wait = 25.0
    st.barrier_wait = 25.0
    assert st.idle_fraction == 0.5
    assert ProcessorStats().idle_fraction == 0.0


def test_result_aggregates():
    res = outcome().result
    assert res.n_processors == 4
    assert res.total_compute_time() == pytest.approx(4 * 1000.0)
    assert res.total_comm_time() > 0
    assert res.total_barrier_time() > 0
    assert res.comp_comm_ratio() > 0
    rows = res.breakdown_rows()
    assert len(rows) == 4
    assert all(len(r) == 8 for r in rows)
    assert "predicted time" in res.summary()


def test_breakdown_rows_sum_to_lifetime():
    res = outcome().result
    for row in res.breakdown_rows():
        pid, compute, ovh, svc, cwait, bovh, bwait, end = row
        assert compute + ovh + svc + cwait + bovh + bwait <= end + 1e-6
