"""The trace-driven extrapolation simulator."""

import pytest

from repro.core import presets
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.pcxx import Collection, make_distribution
from repro.sim.simulator import Simulator, simulate
from repro.trace.events import EventKind


def simple_program(n, work_us=1000.0, reads_per_iter=1, iters=2, nbytes=64):
    def factory(rt):
        coll = Collection(
            "c", make_distribution(n, n, "block"), element_nbytes=nbytes
        )
        for i in range(n):
            coll.poke(i, float(i))

        def body(ctx):
            for it in range(iters):
                yield from ctx.compute_us(work_us)
                for r in range(reads_per_iter):
                    if n > 1:
                        yield from ctx.get(
                            coll, (ctx.tid + r + 1) % n, nbytes=8
                        )
                yield from ctx.barrier()

        return body

    return factory


def translated(n, **kw):
    return translate(measure(simple_program(n, **kw), n, name="simple"))


def test_ideal_environment_matches_translation():
    """Key invariant: zero-cost simulation == translated ideal time."""
    for n in (1, 2, 4, 8):
        tp = translated(n)
        res = simulate(tp, presets.ideal())
        assert res.execution_time == pytest.approx(tp.ideal_execution_time())


def test_costs_only_add_time():
    tp = translated(4)
    ideal = simulate(tp, presets.ideal()).execution_time
    dm = simulate(tp, presets.distributed_memory()).execution_time
    assert dm > ideal


def test_mips_ratio_scales_compute():
    tp = translated(1, reads_per_iter=0)
    base = simulate(tp, presets.ideal()).execution_time
    slow = simulate(
        tp, presets.ideal().with_(processor={"mips_ratio": 2.0})
    ).execution_time
    assert slow == pytest.approx(2 * base)


def test_startup_time_monotone():
    tp = translated(4)
    times = []
    for startup in (0.0, 50.0, 200.0):
        params = presets.distributed_memory().with_(
            network={"comm_startup_time": startup}
        )
        times.append(simulate(tp, params).execution_time)
    assert times == sorted(times)
    assert times[0] < times[-1]


def test_byte_transfer_time_monotone():
    tp = translated(4, nbytes=4096)
    trace_params = []
    for byte_time in (0.005, 0.05, 0.5):
        params = presets.distributed_memory().with_(
            network={"byte_transfer_time": byte_time}
        )
        trace_params.append(simulate(tp, params).execution_time)
    assert trace_params == sorted(trace_params)


def test_message_accounting():
    n, iters, reads = 4, 2, 1
    tp = translated(n, iters=iters, reads_per_iter=reads)
    res = simulate(tp, presets.distributed_memory())
    # request+reply per read, plus barrier arrive/release messages.
    read_msgs = 2 * n * iters * reads
    barrier_msgs = 2 * (n - 1) * iters
    assert res.network.messages == read_msgs + barrier_msgs
    assert res.barrier_count == iters
    assert sum(p.remote_accesses for p in res.processors) == n * iters * reads
    assert sum(p.requests_served for p in res.processors) == n * iters * reads


def test_extrapolated_traces_returned():
    tp = translated(2)
    res = simulate(tp, presets.distributed_memory())
    assert len(res.threads) == 2
    for tt in res.threads:
        kinds = [e.kind for e in tt.events]
        assert kinds[0] == EventKind.THREAD_BEGIN
        assert kinds[-1] == EventKind.THREAD_END
        times = [e.time for e in tt.events]
        assert times == sorted(times)


def test_stats_are_consistent():
    tp = translated(4)
    res = simulate(tp, presets.distributed_memory())
    for p in res.processors:
        assert p.end_time <= res.execution_time
        busy = sum(p.categories.values())
        assert busy == pytest.approx(p.busy_total)
        assert p.comm_wait >= 0
        assert p.barrier_wait >= 0
        # busy + waits can't exceed the processor's lifetime.
        assert busy + p.comm_wait + p.barrier_wait <= p.end_time + 1e-6


def test_utilization_bounds():
    tp = translated(4)
    res = simulate(tp, presets.distributed_memory())
    assert 0.0 < res.utilization() <= 1.0


def test_simulator_run_twice_rejected():
    tp = translated(2)
    sim = Simulator(tp, presets.ideal())
    sim.run()
    with pytest.raises(RuntimeError):
        sim.run()


def test_max_events_cap():
    tp = translated(4)
    with pytest.raises(RuntimeError, match="exceeded"):
        Simulator(tp, presets.distributed_memory(), max_events=10).run()


def imbalanced_program(n, iters=2):
    """Thread t computes (t+1)x the base work, so fast threads' requests
    land on slow threads mid-compute (exercising the service policies)."""

    def factory(rt):
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        for i in range(n):
            coll.poke(i, float(i))

        def body(ctx):
            for it in range(iters):
                yield from ctx.compute_us(500.0 * (ctx.tid + 1))
                yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
                yield from ctx.barrier()

        return body

    return factory


@pytest.mark.parametrize("policy", ["no_interrupt", "interrupt", "poll"])
def test_policies_complete_and_cover_costs(policy):
    n = 8
    tp = translate(measure(imbalanced_program(n), n, name="imb"))
    params = presets.distributed_memory().with_(processor={"policy": policy})
    res = simulate(tp, params)
    assert res.execution_time > 0
    if policy == "poll":
        assert any(p.polls > 0 for p in res.processors)
    if policy == "interrupt":
        assert any(p.interrupts > 0 for p in res.processors)


@pytest.mark.parametrize("algorithm", ["linear", "log", "hardware"])
def test_barrier_algorithms_complete(algorithm):
    tp = translated(8)
    params = presets.distributed_memory().with_(barrier={"algorithm": algorithm})
    res = simulate(tp, params)
    assert res.barrier_count == 2


def test_flag_mode_barrier():
    tp = translated(8)
    params = presets.distributed_memory().with_(barrier={"by_msgs": False})
    res = simulate(tp, params)
    # No barrier messages on the network in flag mode.
    assert "barrier_arrive" not in res.network.by_kind
    assert res.barrier_count == 2


def test_barrier_cost_structure_linear():
    """A single barrier with balanced arrival should cost at least
    entry + (n-1)*check + model + exit on the master's path."""
    n = 4
    tp = translated(n, work_us=100.0, reads_per_iter=0, iters=1)
    params = presets.distributed_memory()
    res = simulate(tp, params)
    b = params.barrier
    floor = b.entry_time + (n - 1) * b.check_time + b.model_time + b.exit_time
    assert res.execution_time >= 100.0 + floor


def test_remote_write_protocol():
    n = 2

    def factory(rt):
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=32)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            if ctx.tid == 0:
                yield from ctx.put(coll, 1, -5)
            yield from ctx.barrier()

        return body

    tp = translate(measure(factory, n, name="w"))
    res = simulate(tp, presets.distributed_memory())
    assert res.network.by_kind.get("write") == 1
    assert res.network.by_kind.get("write_ack") == 1
