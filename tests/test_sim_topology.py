"""Interconnect topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.topology import available_topologies, make_topology


def test_registry():
    names = available_topologies()
    for expected in ("bus", "crossbar", "ring", "mesh2d", "torus2d", "hypercube", "fattree"):
        assert expected in names
    with pytest.raises(ValueError):
        make_topology("donut", 4)


def test_crossbar():
    t = make_topology("crossbar", 8)
    assert t.hops(0, 0) == 0
    assert t.hops(0, 7) == 1
    assert t.bisection == 4


def test_bus():
    t = make_topology("bus", 8)
    assert t.hops(2, 5) == 1
    assert t.bisection == 1


def test_ring():
    t = make_topology("ring", 8)
    assert t.hops(0, 1) == 1
    assert t.hops(0, 4) == 4
    assert t.hops(0, 7) == 1  # wraps
    assert t.bisection == 2


def test_mesh2d():
    t = make_topology("mesh2d", 16)  # 4x4
    assert t.hops(0, 5) == 2  # (0,0) -> (1,1)
    assert t.hops(0, 15) == 6
    assert t.bisection == 4


def test_torus2d_wraps():
    t = make_topology("torus2d", 16)
    assert t.hops(0, 12) == 1  # (0,0) -> (3,0) wraps vertically
    assert t.bisection == 8


def test_hypercube():
    t = make_topology("hypercube", 8)
    assert t.hops(0, 7) == 3
    assert t.hops(0, 1) == 1
    assert t.bisection == 4


def test_fattree():
    t = make_topology("fattree", 16)
    assert t.hops(0, 1) == 2  # share a leaf switch: up 1, down 1
    assert t.hops(0, 15) == 4
    assert t.bisection == 8
    assert t.height == 2


def test_out_of_range():
    t = make_topology("crossbar", 4)
    with pytest.raises(IndexError):
        t.hops(0, 4)


def test_single_node():
    for name in available_topologies():
        t = make_topology(name, 1)
        assert t.hops(0, 0) == 0
        assert t.bisection >= 1


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(available_topologies()),
    n=st.integers(1, 40),
    data=st.data(),
)
def test_topology_metric_properties(name, n, data):
    """Property: hops is a symmetric metric bounded by the diameter."""
    t = make_topology(name, n)
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    assert t.hops(a, b) == t.hops(b, a)
    assert (t.hops(a, b) == 0) == (a == b)
    assert t.hops(a, b) <= max(t.diameter, 1)
    assert t.bisection >= 1
