"""Result cache: content addressing, invalidation, corruption recovery."""

import json

import pytest

from dataclasses import replace

from repro.core.presets import by_name
from repro.sweep.cache import CACHE_SCHEMA, ResultCache, result_key


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


DIGEST = "ab" * 32


def test_key_is_stable_and_hex():
    params = by_name("cm5")
    k1 = result_key(DIGEST, params)
    k2 = result_key(DIGEST, params)
    assert k1 == k2
    assert len(k1) == 64 and int(k1, 16) >= 0


def test_key_changes_with_parameters():
    base = by_name("cm5")
    k_base = result_key(DIGEST, base)
    changed = replace(base, network=replace(base.network, hop_time=99.0))
    assert result_key(DIGEST, changed) != k_base
    # The cosmetic preset name is NOT part of the identity.
    renamed = replace(base, name="other")
    assert result_key(DIGEST, renamed) == k_base


def test_key_changes_with_trace_and_version():
    params = by_name("cm5")
    assert result_key(DIGEST, params) != result_key("cd" * 32, params)
    assert result_key(DIGEST, params, version="0.0.0-test") != result_key(
        DIGEST, params
    )


def test_miss_then_hit(cache):
    params = by_name("cm5")
    key = result_key(DIGEST, params)
    assert cache.get(key) is None
    assert cache.misses == 1 and cache.hits == 0
    cache.put(key, {"predicted_time_us": 1.5})
    assert cache.get(key) == {"predicted_time_us": 1.5}
    assert cache.hits == 1


def test_parameter_change_misses(cache):
    base = by_name("cm5")
    cache.put(result_key(DIGEST, base), {"v": 1})
    changed = replace(base, network=replace(base.network, hop_time=99.0))
    assert cache.get(result_key(DIGEST, changed)) is None


def test_version_change_misses(cache):
    params = by_name("cm5")
    cache.put(result_key(DIGEST, params), {"v": 1})
    assert cache.get(result_key(DIGEST, params, version="99.0")) is None


def test_corrupted_entry_is_miss_and_removed(cache):
    key = result_key(DIGEST, by_name("cm5"))
    cache.put(key, {"v": 1})
    path = cache.path_for(key)
    path.write_text("{not json")
    assert cache.get(key) is None  # no crash
    assert not path.exists()  # bad entry evicted
    cache.put(key, {"v": 2})
    assert cache.get(key) == {"v": 2}


def test_wrong_schema_or_key_is_miss(cache):
    key = result_key(DIGEST, by_name("cm5"))
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"schema": CACHE_SCHEMA + 1, "key": key, "result": {}})
    )
    assert cache.get(key) is None
    cache.put(key, {"v": 1})
    doc = json.loads(path.read_text())
    doc["key"] = "f" * 64
    path.write_text(json.dumps(doc))
    assert cache.get(key) is None


def test_stats_and_prune(cache):
    assert cache.stats()["entries"] == 0
    for i in range(3):
        cache.put(result_key(f"{i:02x}" * 32, by_name("cm5")), {"i": i})
    stats = cache.stats()
    assert stats["entries"] == 3 and stats["bytes"] > 0
    removed = cache.prune()
    assert removed == 3
    assert cache.stats()["entries"] == 0


def test_entries_shard_by_key_prefix(cache):
    key = result_key(DIGEST, by_name("cm5"))
    assert cache.path_for(key).parent.name == key[:2]


# -- concurrent-deletion tolerance -------------------------------------------
#
# stats()/prune() may race another prune, the serve memoizer, or a plain
# `rm -rf` of the cache directory; any path may vanish between listing
# and touching it.  None of that may raise.


def _fill(cache, n=3):
    for i in range(n):
        cache.put(result_key(f"{i:02x}" * 32, by_name("cm5")), {"i": i})


def test_stats_tolerates_root_vanishing_mid_scan(cache, monkeypatch):
    import shutil
    from pathlib import Path

    _fill(cache)
    real_iterdir = Path.iterdir

    def vanish_then_iter(self):
        if self == cache.root:
            shutil.rmtree(cache.root, ignore_errors=True)
        return real_iterdir(self)

    monkeypatch.setattr(Path, "iterdir", vanish_then_iter)
    assert cache.stats()["entries"] == 0


def test_prune_tolerates_root_vanishing_mid_scan(cache, monkeypatch):
    import shutil
    from pathlib import Path

    _fill(cache)
    real_iterdir = Path.iterdir

    def vanish_then_iter(self):
        if self == cache.root:
            shutil.rmtree(cache.root, ignore_errors=True)
        return real_iterdir(self)

    monkeypatch.setattr(Path, "iterdir", vanish_then_iter)
    assert cache.prune() == 0


def test_scan_tolerates_shard_vanishing(cache, monkeypatch):
    import shutil
    from pathlib import Path

    _fill(cache)
    real_glob = Path.glob

    def vanish_then_glob(self, pattern):
        if self.parent == cache.root:
            shutil.rmtree(self, ignore_errors=True)
        return real_glob(self, pattern)

    monkeypatch.setattr(Path, "glob", vanish_then_glob)
    assert cache.stats()["entries"] == 0
    assert cache.prune() == 0


def test_stats_tolerates_entry_vanishing_before_stat(cache):
    _fill(cache)
    paths = list(cache._entries())
    paths[0].unlink()  # simulate a racing prune winning on one entry
    assert cache.stats()["entries"] == 2


def test_two_instances_prune_and_put_concurrently(tmp_path):
    import threading

    root = tmp_path / "shared-cache"
    writer_cache = ResultCache(root)
    pruner_cache = ResultCache(root)
    errors = []

    def writer():
        try:
            for round_ in range(20):
                _fill(writer_cache, n=4)
        except Exception as exc:  # pragma: no cover — failure detail
            errors.append(exc)

    def pruner():
        try:
            for _ in range(20):
                pruner_cache.prune()
                pruner_cache.stats()
        except Exception as exc:  # pragma: no cover — failure detail
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=pruner) for _ in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert not errors
    writer_cache.prune()
    assert writer_cache.stats()["entries"] == 0
