"""The ``extrap sweep`` subcommand and its satellite CLI changes."""

import json

import pytest

from repro.cli import main

SPEC = {
    "name": "cli-sweep",
    "preset": "cm5",
    "grid": {
        "network.hop_time": [0.1, 0.2],
        "processor.mips_ratio": [0.5, 1.0],
    },
}


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "t.jsonl"
    assert main(["trace", "embar", "-n", "4", "-o", str(path)]) == 0
    return path


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return path


def test_sweep_run_and_cache_hits(tmp_path, trace_path, spec_path, capsys):
    cache_dir = tmp_path / "cache"
    args = [
        "sweep", "run", str(spec_path),
        "--trace", str(trace_path),
        "--cache-dir", str(cache_dir),
        "-o", str(tmp_path / "a.json"),
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "0 hits, 4 misses" in first
    assert "best config" in first

    args[-1] = str(tmp_path / "b.json")
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "4 hits, 0 misses (100% hit rate)" in second
    assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()


def test_sweep_serial_parallel_artifacts_identical(
    tmp_path, trace_path, spec_path, capsys
):
    for jobs, name in (("1", "s.json"), ("4", "p.json")):
        assert main([
            "sweep", "run", str(spec_path),
            "--trace", str(trace_path),
            "--no-cache", "--jobs", jobs,
            "-o", str(tmp_path / name),
        ]) == 0
    capsys.readouterr()
    assert (tmp_path / "s.json").read_bytes() == (tmp_path / "p.json").read_bytes()


def test_sweep_stats_and_prune(tmp_path, trace_path, spec_path, capsys):
    cache_dir = tmp_path / "cache"
    main([
        "sweep", "run", str(spec_path),
        "--trace", str(trace_path), "--cache-dir", str(cache_dir),
    ])
    capsys.readouterr()
    assert main(["sweep", "stats", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "4 entries" in out
    assert main(["sweep", "prune", "--cache-dir", str(cache_dir)]) == 0
    assert "pruned 4" in capsys.readouterr().out
    main(["sweep", "stats", "--cache-dir", str(cache_dir)])
    assert "0 entries" in capsys.readouterr().out


def test_sweep_missing_spec_exits_2(tmp_path, capsys):
    assert main(["sweep", "run", str(tmp_path / "nope.json")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("extrap: error:") and "nope.json" in err


def test_sweep_bad_spec_exits_2(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"grid": {"netwrok.hop_time": [1.0]}}))
    assert main(["sweep", "run", str(path)]) == 2
    err = capsys.readouterr().err
    assert "did you mean 'network'" in err
    assert err.count("\n") == 1  # one-line error, no traceback


def test_sweep_needs_trace_or_benchmark(spec_path, capsys):
    assert main(["sweep", "run", str(spec_path), "--no-cache"]) == 2
    assert "--trace" in capsys.readouterr().err


def test_sweep_bad_jobs_exits_2(trace_path, spec_path, capsys):
    assert main([
        "sweep", "run", str(spec_path),
        "--trace", str(trace_path), "--jobs", "0",
    ]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_validate_prints_digest(trace_path, capsys):
    assert main(["validate", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "sha256" in out
    digest = out.split("sha256")[1].strip()
    assert len(digest) == 64

    # Same workload re-traced gives the same digest (determinism).
    capsys.readouterr()
    main(["validate", str(trace_path)])
    assert digest in capsys.readouterr().out


def test_unknown_experiment_suggests():
    from repro.experiments.runner import run_experiment

    with pytest.raises(ValueError, match="did you mean 'fig4'"):
        run_experiment("fig44")


def test_cli_unknown_experiment_rejected(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["experiment", "fig44"])
    assert exc.value.code == 2
    capsys.readouterr()


def test_reproduce_unknown_experiment_exits_2(tmp_path, capsys):
    assert main(
        ["reproduce", "--out", str(tmp_path / "r"), "--only", "nope"]
    ) == 2
    err = capsys.readouterr().err
    assert err.startswith("extrap: error:") and "unknown" in err
