"""Sweep executor: serial/parallel determinism, retries, failure capture."""

import pytest

from repro.bench.suite import get_benchmark
from repro.core.pipeline import measure
from repro.sweep import ParallelExecutor, ResultCache, SweepSpec, run_sweep
from repro.sweep.analyze import (
    best_record,
    format_run,
    pareto_front,
    to_experiment_result,
)


@pytest.fixture(scope="module")
def embar_trace():
    info = get_benchmark("embar")
    return measure(info.make_program()(4), 4, name="embar")


@pytest.fixture(scope="module")
def spec():
    return SweepSpec.from_dict(
        {
            "name": "t",
            "preset": "cm5",
            "grid": {
                "network.hop_time": [0.1, 0.2],
                "processor.mips_ratio": [0.5, 1.0],
            },
        }
    )


# -- generic executor --------------------------------------------------------


def _double(x):
    return x * 2


def _boom(x):
    raise RuntimeError(f"boom {x}")


def test_map_serial_ordered():
    ex = ParallelExecutor(1)
    outs = ex.map(_double, [3, 1, 2])
    assert [o.value for o in outs] == [6, 2, 4]
    assert all(o.ok for o in outs)


def test_map_parallel_matches_serial_order():
    tasks = list(range(10))
    serial = ParallelExecutor(1).map(_double, tasks)
    parallel = ParallelExecutor(3).map(_double, tasks)
    assert [o.value for o in serial] == [o.value for o in parallel]
    assert [o.index for o in parallel] == list(range(10))


def test_failures_recorded_not_raised():
    outs = ParallelExecutor(1).map(_boom, [1, 2])
    assert all(not o.ok for o in outs)
    assert outs[0].error_type == "RuntimeError"
    assert "boom 1" in outs[0].error


def test_jobs_validation():
    with pytest.raises(ValueError, match="jobs"):
        ParallelExecutor(0)
    with pytest.raises(ValueError, match="retries"):
        ParallelExecutor(1, retries=-1)


def test_retry_on_matching_error_type(monkeypatch):
    calls = {"n": 0}

    def flaky(x):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return x

    ex = ParallelExecutor(1, retries=2, retry_on=("RuntimeError",))
    outs = ex.map(flaky, [7])
    assert outs[0].ok and outs[0].value == 7
    assert outs[0].attempts == 2
    assert ex.retried == 1


def test_retries_exhausted_records_failure():
    ex = ParallelExecutor(1, retries=2, retry_on=("RuntimeError",))
    outs = ex.map(_boom, [1])
    assert not outs[0].ok
    assert outs[0].attempts == 3


# -- sweep determinism -------------------------------------------------------


def test_serial_vs_parallel_sweep_identical_json(spec, embar_trace):
    run1 = run_sweep(spec, trace=embar_trace, jobs=1)
    run4 = run_sweep(spec, trace=embar_trace, jobs=4)
    assert run1.to_json() == run4.to_json()
    assert format_run(run1) == format_run(run4)


def test_cached_rerun_identical_json(spec, embar_trace, tmp_path):
    cache = ResultCache(tmp_path / "c")
    cold = run_sweep(spec, trace=embar_trace, jobs=2, cache=cache)
    warm = run_sweep(spec, trace=embar_trace, jobs=1, cache=cache)
    assert cold.to_json() == warm.to_json()
    assert cold.counters.cache_misses == 4 and cold.counters.cache_hits == 0
    assert warm.counters.cache_hits == 4 and warm.counters.cache_misses == 0
    assert warm.counters.hit_rate == 1.0
    assert warm.counters.executed == 0


def test_n_threads_axis_rejected_in_trace_mode(embar_trace):
    spec = SweepSpec.from_dict(
        {"grid": {"n_threads": [2, 4]}, "benchmark": "embar"}
    )
    with pytest.raises(ValueError, match="n_threads"):
        run_sweep(spec, trace=embar_trace)


def test_benchmark_mode_with_thread_axis(tmp_path):
    spec = SweepSpec.from_dict(
        {
            "name": "bm",
            "preset": "cm5",
            "benchmark": "embar",
            "grid": {"n_threads": [2, 4]},
        }
    )
    run = run_sweep(spec, cache=ResultCache(tmp_path / "c"))
    assert all(r.ok for r in run.records)
    assert [r.result["n_threads"] for r in run.records] == [2, 4]
    # Bigger runs take longer on the simulated machine too.
    assert (
        run.records[1].result["predicted_time_us"]
        != run.records[0].result["predicted_time_us"]
    )


def test_no_trace_no_benchmark_rejected():
    spec = SweepSpec.from_dict({"points": [{}]})
    with pytest.raises(ValueError, match="benchmark"):
        run_sweep(spec)


# -- analysis ----------------------------------------------------------------


def test_best_and_pareto(spec, embar_trace):
    run = run_sweep(spec, trace=embar_trace)
    best = best_record(run)
    assert best.result["predicted_time_us"] == min(
        r.result["predicted_time_us"] for r in run.records
    )
    front = pareto_front(run)
    assert best in front
    # Nothing on the front is dominated by anything else on it.
    for a in front:
        for b in front:
            if a is b:
                continue
            assert not (
                b.result["predicted_time_us"] <= a.result["predicted_time_us"]
                and b.result["message_bytes"] <= a.result["message_bytes"]
                and (
                    b.result["predicted_time_us"]
                    < a.result["predicted_time_us"]
                    or b.result["message_bytes"] < a.result["message_bytes"]
                )
            )


def test_to_experiment_result_shape(spec, embar_trace):
    run = run_sweep(spec, trace=embar_trace)
    er = to_experiment_result(run)
    assert er.name == "sweep-t"
    assert set(er.series["predicted time (us)"]) == {0, 1, 2, 3}
    assert er.table()  # renders without error


# -- interrupt handling ------------------------------------------------------
#
# Ctrl-C during a parallel sweep must not strand worker processes: the
# old `with ProcessPoolExecutor` exit path ran shutdown(wait=True),
# which executes every queued task before returning.


def test_keyboard_interrupt_reaps_workers(monkeypatch):
    import multiprocessing
    import time

    from repro.sweep import executor as executor_mod

    def interrupt(*_args, **_kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(executor_mod, "wait", interrupt)
    t0 = time.monotonic()
    with pytest.raises(KeyboardInterrupt):
        ParallelExecutor(2).map(_double, list(range(8)))
    assert time.monotonic() - t0 < 30  # no full-queue drain on the way out
    deadline = time.monotonic() + 15
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children()


def test_non_interrupt_error_still_propagates(monkeypatch):
    from repro.sweep import executor as executor_mod

    def explode(*_args, **_kwargs):
        raise RuntimeError("scheduler died")

    monkeypatch.setattr(executor_mod, "wait", explode)
    with pytest.raises(RuntimeError, match="scheduler died"):
        ParallelExecutor(2).map(_double, list(range(4)))
