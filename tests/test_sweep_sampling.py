"""Sampled sweeps: spec validation, cache-key separation, determinism."""

import pytest

from repro import measure
from repro.bench.suite import get_benchmark
from repro.core.presets import by_name
from repro.experiments.paramsets import matmul_config
from repro.sampling import SamplingConfig
from repro.sweep import ResultCache, SweepSpec, run_sweep
from repro.sweep.cache import result_key


@pytest.fixture(scope="module")
def trace():
    maker = get_benchmark("matmul").make_program(matmul_config(quick=True))
    return measure(maker(8), 8, name="matmul")


SPACE = {
    "name": "sampled",
    "preset": "cm5",
    "grid": {"network.hop_time": [0.5, 1.0]},
    "sample": {"seed": 0, "max_phases": 8},
}


# -- spec --------------------------------------------------------------------


def test_spec_sample_roundtrip():
    spec = SweepSpec.from_dict(SPACE)
    assert isinstance(spec.sample, SamplingConfig)
    assert spec.sample.seed == 0
    d = spec.to_dict()
    assert d["sample"] == spec.sample.canonical_dict()
    again = SweepSpec.from_dict(d)
    assert again.sample == spec.sample


def test_spec_sample_unknown_key():
    bad = dict(SPACE, sample={"max_phase": 4})
    with pytest.raises(ValueError, match="did you mean"):
        SweepSpec.from_dict(bad)


def test_spec_sample_bad_type():
    bad = dict(SPACE, sample={"seed": "zero"})
    with pytest.raises(ValueError, match="seed"):
        SweepSpec.from_dict(bad)


def test_spec_without_sample_unchanged():
    spec = SweepSpec.from_dict({k: v for k, v in SPACE.items() if k != "sample"})
    assert spec.sample is None
    assert "sample" not in spec.to_dict()


# -- cache-key separation ----------------------------------------------------


def test_sampled_and_full_keys_never_collide(trace):
    params = by_name("cm5")
    digest = trace.digest()
    full = result_key(digest, params)
    sampled = result_key(
        digest, params, extra={"sampling": SamplingConfig().canonical_dict()}
    )
    other = result_key(
        digest,
        params,
        extra={"sampling": SamplingConfig(seed=1).canonical_dict()},
    )
    assert len({full, sampled, other}) == 3


def test_sampled_sweep_does_not_touch_full_cache(trace, tmp_path):
    cache = ResultCache(tmp_path / "c")
    full_spec = SweepSpec.from_dict(
        {k: v for k, v in SPACE.items() if k != "sample"}
    )
    sampled_spec = SweepSpec.from_dict(SPACE)
    run_sweep(full_spec, trace=trace, cache=cache)
    assert cache.stats()["entries"] == 2
    run = run_sweep(sampled_spec, trace=trace, cache=cache)
    stats = cache.stats()
    assert stats["entries"] == 4
    assert stats["full_entries"] == 2
    assert stats["sampled_entries"] == 2
    assert 0 < stats["sampled_events_simulated"] < stats["sampled_events_total"]
    assert run.counters.cache_misses == 2  # the full entries answered nothing


# -- results -----------------------------------------------------------------


def test_sampled_records_marked(trace, tmp_path):
    spec = SweepSpec.from_dict(SPACE)
    run = run_sweep(spec, trace=trace, cache=ResultCache(tmp_path / "c"))
    for rec in run.records:
        assert rec.ok
        assert rec.result["estimated"] is True
        sampling = rec.result["sampling"]
        assert sampling["config"] == spec.sample.canonical_dict()
        assert sampling["events_simulated"] < sampling["events_total"]
    assert '"sample"' in run.to_json()


def test_serial_parallel_byte_identical(trace, tmp_path):
    spec = SweepSpec.from_dict(SPACE)
    serial = run_sweep(spec, trace=trace, cache=ResultCache(tmp_path / "a"), jobs=1)
    parallel = run_sweep(
        spec, trace=trace, cache=ResultCache(tmp_path / "b"), jobs=2
    )
    assert serial.to_json() == parallel.to_json()


def test_cached_replay_identical(trace, tmp_path):
    spec = SweepSpec.from_dict(SPACE)
    cache = ResultCache(tmp_path / "c")
    first = run_sweep(spec, trace=trace, cache=cache)
    second = run_sweep(spec, trace=trace, cache=cache)
    assert second.counters.cache_hits == 2
    assert first.to_json() == second.to_json()
