"""SweepSpec validation and deterministic expansion."""

import json

import pytest

from repro.core.parameters import RemoteServicePolicy
from repro.sweep.spec import SweepPoint, SweepSpec, params_canonical_dict


def grid_spec(**over):
    d = {
        "name": "g",
        "preset": "cm5",
        "grid": {
            "network.hop_time": [0.1, 0.2],
            "processor.mips_ratio": [0.5, 1.0],
        },
    }
    d.update(over)
    return d


def test_grid_expansion_order_is_deterministic():
    spec = SweepSpec.from_dict(grid_spec())
    points = spec.expand()
    assert len(points) == len(spec) == 4
    assert [p.index for p in points] == [0, 1, 2, 3]
    # Last axis fastest, axes in spec order.
    assert points[0].as_dict() == {
        "network.hop_time": 0.1,
        "processor.mips_ratio": 0.5,
    }
    assert points[1].as_dict() == {
        "network.hop_time": 0.1,
        "processor.mips_ratio": 1.0,
    }
    assert points[3].as_dict() == {
        "network.hop_time": 0.2,
        "processor.mips_ratio": 1.0,
    }
    # Expansion is pure: same spec, same points.
    assert spec.expand() == points


def test_points_mode_preserves_order():
    spec = SweepSpec.from_dict(
        {
            "name": "p",
            "points": [
                {"preset": "cm5"},
                {"network.hop_time": 1.0},
                {},
            ],
        }
    )
    points = spec.expand()
    assert len(points) == 3
    assert points[0].as_dict() == {"preset": "cm5"}
    assert points[2].label() == "baseline"


def test_point_params_resolution():
    spec = SweepSpec.from_dict(grid_spec())
    p = spec.expand()[3]
    params = p.params(spec.preset)
    assert params.network.hop_time == 0.2
    assert params.processor.mips_ratio == 1.0
    # Untouched fields keep the preset's values.
    assert params.network.topology == "fattree"


def test_preset_axis_swaps_base():
    spec = SweepSpec.from_dict(
        {"points": [{"preset": "ideal"}, {}], "preset": "cm5"}
    )
    pts = spec.expand()
    assert pts[0].params("cm5").network.comm_startup_time == 0.0
    assert pts[1].params("cm5").network.comm_startup_time == 10.0


def test_faults_axis_full_plan_and_field():
    spec = SweepSpec.from_dict(
        {
            "points": [
                {"faults": {"seed": 3, "msg_loss_rate": 0.1}},
                {"faults": None},
                {"faults.msg_jitter": 5.0},
            ]
        }
    )
    pts = spec.expand()
    assert pts[0].params("cm5").faults.msg_loss_rate == 0.1
    assert pts[1].params("cm5").faults is None
    assert pts[2].params("cm5").faults.msg_jitter == 5.0


def test_unknown_group_suggests():
    with pytest.raises(ValueError, match="netwrok"):
        SweepSpec.from_dict({"grid": {"netwrok.hop_time": [1.0]}})
    with pytest.raises(ValueError, match="did you mean 'network'"):
        SweepSpec.from_dict({"grid": {"netwrok.hop_time": [1.0]}})


def test_unknown_field_suggests():
    with pytest.raises(ValueError, match="did you mean 'hop_time'"):
        SweepSpec.from_dict({"grid": {"network.hop_tme": [1.0]}})


def test_unknown_preset_value_rejected():
    with pytest.raises(ValueError, match="unknown preset"):
        SweepSpec.from_dict({"grid": {"preset": ["cm6"]}})


def test_bad_field_value_fails_at_load_time():
    with pytest.raises(ValueError, match="mips_ratio"):
        SweepSpec.from_dict({"grid": {"processor.mips_ratio": [-1.0]}})


def test_needs_exactly_one_of_grid_points():
    with pytest.raises(ValueError, match="exactly one"):
        SweepSpec.from_dict({"name": "x"})
    with pytest.raises(ValueError, match="exactly one"):
        SweepSpec.from_dict(
            {"grid": {"network.hop_time": [1.0]}, "points": [{}]}
        )


def test_unknown_spec_field_suggests():
    with pytest.raises(ValueError, match="pointz"):
        SweepSpec.from_dict({"pointz": [{}]})


def test_n_threads_axis_validation():
    with pytest.raises(ValueError, match="n_threads"):
        SweepSpec.from_dict({"grid": {"n_threads": [0]}})
    spec = SweepSpec.from_dict(
        {"grid": {"n_threads": [2, 4]}, "benchmark": "embar"}
    )
    assert spec.uses_n_threads_axis()


def test_roundtrip_through_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(grid_spec()))
    spec = SweepSpec.from_file(path)
    assert SweepSpec.from_dict(spec.to_dict()).expand() == spec.expand()


def test_from_file_errors_name_the_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{nope")
    with pytest.raises(ValueError, match="bad.json"):
        SweepSpec.from_file(path)
    path.write_text('{"grid": {"bogus.field": [1]}}')
    with pytest.raises(ValueError, match="bad.json"):
        SweepSpec.from_file(path)


def test_params_canonical_dict_is_json_safe_and_name_free():
    spec = SweepSpec.from_dict(grid_spec())
    params = spec.expand()[0].params("cm5")
    d = params_canonical_dict(params)
    blob = json.dumps(d, sort_keys=True)
    assert "cm5" not in blob  # cosmetic name excluded from cache identity
    assert d["processor"]["policy"] == RemoteServicePolicy.INTERRUPT.value
    assert d["faults"] is None
    # Stable across calls.
    assert params_canonical_dict(params) == d


def test_point_label_stable():
    p = SweepPoint(0, (("network.hop_time", 0.5), ("preset", "cm5")))
    assert p.label() == "network.hop_time=0.5 preset=cm5"
