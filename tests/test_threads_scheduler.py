"""The non-preemptive threads package."""

import pytest

from repro.threads import Block, DeadlockError, Scheduler, ThreadState, YieldProcessor


def test_runs_to_completion_in_spawn_order():
    sched = Scheduler()
    log = []

    def thread(tag):
        log.append(tag)
        return
        yield

    for tag in "abc":
        sched.spawn(thread(tag))
    sched.run()
    assert log == ["a", "b", "c"]
    assert all(t.state is ThreadState.FINISHED for t in sched.threads)


def test_clock_advance_only_by_running_thread():
    sched = Scheduler()
    times = []

    def thread(dt):
        sched.advance(dt)
        times.append(sched.clock)
        return
        yield

    sched.spawn(thread(10.0))
    sched.spawn(thread(5.0))
    sched.run()
    assert times == [10.0, 15.0]


def test_yield_processor_round_robin():
    sched = Scheduler()
    log = []

    def thread(tag):
        log.append(tag + "1")
        yield YieldProcessor()
        log.append(tag + "2")

    sched.spawn(thread("a"))
    sched.spawn(thread("b"))
    sched.run()
    assert log == ["a1", "b1", "a2", "b2"]


def test_block_and_unblock():
    sched = Scheduler()
    log = []

    def blocker():
        log.append("blocking")
        yield Block()
        log.append("resumed")

    def waker():
        log.append("waking")
        sched.unblock(0)
        return
        yield

    sched.spawn(blocker())
    sched.spawn(waker())
    sched.run()
    assert log == ["blocking", "waking", "resumed"]


def test_deadlock_detection():
    sched = Scheduler()

    def thread():
        yield Block()

    sched.spawn(thread())
    with pytest.raises(DeadlockError):
        sched.run()


def test_unblock_non_blocked_rejected():
    sched = Scheduler()

    def thread():
        with pytest.raises(RuntimeError):
            sched.unblock(0)  # self is RUNNING, not BLOCKED
        return
        yield

    sched.spawn(thread())
    sched.run()


def test_switch_overhead_charged():
    sched = Scheduler(switch_overhead=2.0)

    def thread():
        yield YieldProcessor()

    sched.spawn(thread())
    sched.spawn(thread())
    sched.run()
    # switches: a(1) b(1) a(1) b(1) = 4 switches
    assert sched.clock == pytest.approx(8.0)
    assert sched.switch_count == 4


def test_bad_directive_rejected():
    sched = Scheduler()

    def thread():
        yield 42

    sched.spawn(thread())
    with pytest.raises(TypeError, match="directive"):
        sched.run()


def test_negative_advance_rejected():
    sched = Scheduler()

    def thread():
        with pytest.raises(ValueError):
            sched.advance(-1.0)
        return
        yield

    sched.spawn(thread())
    sched.run()


def test_thread_results_kept():
    sched = Scheduler()

    def thread(v):
        return v * 2
        yield

    sched.spawn(thread(21))
    sched.run()
    assert sched.threads[0].result == 42


def test_non_generator_body_rejected():
    with pytest.raises(TypeError):
        Scheduler().spawn(lambda: None)
