"""Trace.digest(): stable content identity over the canonical encoding."""

from repro.bench.suite import get_benchmark
from repro.core.pipeline import measure
from repro.trace.io import read_trace, write_trace


def _trace(bench="embar", n=4):
    info = get_benchmark(bench)
    return measure(info.make_program()(n), n, name=bench)


def test_digest_is_stable_and_hex():
    t = _trace()
    d = t.digest()
    assert d == t.digest()
    assert len(d) == 64 and int(d, 16) >= 0


def test_digest_deterministic_across_remeasure():
    assert _trace().digest() == _trace().digest()


def test_digest_distinguishes_workloads():
    assert _trace("embar", 4).digest() != _trace("embar", 2).digest()
    assert _trace("embar", 4).digest() != _trace("cyclic", 4).digest()


def test_digest_survives_io_roundtrip(tmp_path):
    t = _trace()
    for name in ("t.jsonl", "t.bin"):
        path = tmp_path / name
        write_trace(t, path)
        assert read_trace(path).digest() == t.digest()
