"""Trace event records and their serialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.events import EventKind, TraceEvent


def test_kinds_are_stable():
    # Serialised traces depend on these integer values staying put.
    assert int(EventKind.THREAD_BEGIN) == 0
    assert int(EventKind.THREAD_END) == 1
    assert int(EventKind.BARRIER_ENTER) == 2
    assert int(EventKind.BARRIER_EXIT) == 3
    assert int(EventKind.REMOTE_READ) == 4
    assert int(EventKind.REMOTE_WRITE) == 5
    assert int(EventKind.MARK) == 6


def test_predicates():
    b = TraceEvent(0.0, 0, EventKind.BARRIER_ENTER, barrier_id=1)
    r = TraceEvent(0.0, 0, EventKind.REMOTE_READ, owner=1, nbytes=8)
    m = TraceEvent(0.0, 0, EventKind.MARK, tag="x")
    assert b.is_barrier and b.is_sync and not b.is_remote
    assert r.is_remote and not r.is_sync
    assert not m.is_barrier and not m.is_remote


def test_shifted():
    ev = TraceEvent(5.0, 2, EventKind.REMOTE_READ, owner=1, nbytes=8)
    moved = ev.shifted(9.0)
    assert moved.time == 9.0
    assert moved.thread == 2 and moved.owner == 1 and moved.nbytes == 8
    assert ev.time == 5.0  # original untouched


def test_dict_roundtrip_defaults_elided():
    ev = TraceEvent(1.0, 0, EventKind.THREAD_BEGIN)
    d = ev.to_dict()
    assert set(d) == {"t", "th", "k"}
    assert TraceEvent.from_dict(d) == ev


event_strategy = st.builds(
    TraceEvent,
    time=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    thread=st.integers(0, 63),
    kind=st.sampled_from(list(EventKind)),
    barrier_id=st.integers(-1, 1000),
    owner=st.integers(-1, 63),
    nbytes=st.integers(0, 1 << 30),
    collection=st.text(max_size=12),
    tag=st.text(max_size=12),
)


@settings(max_examples=100, deadline=None)
@given(event_strategy)
def test_dict_roundtrip_property(ev):
    assert TraceEvent.from_dict(ev.to_dict()) == ev
