"""Trace file round-trips, both formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.events import EventKind, TraceEvent
from repro.trace.io import read_trace, write_trace
from repro.trace.trace import Trace, TraceMeta


def sample_trace():
    return Trace(
        TraceMeta(program="demo", n_threads=2, size_mode="actual", problem={"k": 1}),
        [
            TraceEvent(0.0, 0, EventKind.THREAD_BEGIN),
            TraceEvent(1.5, 0, EventKind.REMOTE_READ, owner=1, nbytes=128, collection="grid"),
            TraceEvent(2.0, 0, EventKind.BARRIER_ENTER, barrier_id=0),
            TraceEvent(2.5, 1, EventKind.MARK, tag="phase-1"),
            TraceEvent(3.0, 0, EventKind.THREAD_END),
        ],
    )


@pytest.mark.parametrize("suffix", [".jsonl", ".bin"])
def test_roundtrip(tmp_path, suffix):
    tr = sample_trace()
    path = write_trace(tr, tmp_path / f"t{suffix}")
    back = read_trace(path)
    assert back.meta.to_dict() == tr.meta.to_dict()
    assert back.events == tr.events


def test_unknown_suffix(tmp_path):
    with pytest.raises(ValueError):
        write_trace(sample_trace(), tmp_path / "t.xyz")
    with pytest.raises(ValueError):
        read_trace(tmp_path / "t.xyz")


def test_unknown_suffix_error_lists_supported_formats(tmp_path):
    with pytest.raises(ValueError, match=r"\.jsonl.*\.bin"):
        write_trace(sample_trace(), tmp_path / "t.xyz")
    with pytest.raises(ValueError, match=r"\.jsonl.*\.bin"):
        read_trace(tmp_path / "t.xyz")


@pytest.mark.parametrize("suffix", [".JSONL", ".JsonL", ".BIN", ".Bin"])
def test_suffix_case_insensitive(tmp_path, suffix):
    """Regression: .JSONL / .Bin used to hit the unknown-suffix error."""
    tr = sample_trace()
    path = write_trace(tr, tmp_path / f"t{suffix}")
    back = read_trace(path)
    assert back.events == tr.events


def test_streaming_writer_rejects_binary_with_guidance(tmp_path):
    """Regression: handing TraceFileWriter a .bin path must fail with a
    message pointing at write_trace, in any suffix case."""
    from repro.trace.io import TraceFileWriter
    from repro.trace.trace import TraceMeta

    for name in ("t.bin", "t.BIN"):
        with pytest.raises(ValueError, match="write_trace"):
            TraceFileWriter(tmp_path / name, TraceMeta(n_threads=1))


def test_streaming_writer_accepts_uppercase_jsonl(tmp_path):
    from repro.trace.io import TraceFileWriter
    from repro.trace.trace import TraceMeta

    with TraceFileWriter(tmp_path / "t.JSONL", TraceMeta(n_threads=1)) as w:
        pass
    assert w.count == 0


def test_binary_magic_check(tmp_path):
    p = tmp_path / "t.bin"
    p.write_bytes(b"NOPE" + b"\0" * 40)
    with pytest.raises(ValueError, match="magic"):
        read_trace(p)


def test_jsonl_missing_header(tmp_path):
    p = tmp_path / "t.jsonl"
    p.write_text('{"t": 0, "th": 0, "k": 0}\n')
    with pytest.raises(ValueError, match="header"):
        read_trace(p)


def test_binary_version_check(tmp_path):
    import struct

    tr = sample_trace()
    path = write_trace(tr, tmp_path / "t.bin")
    data = bytearray(path.read_bytes())
    # Bump the version field (bytes 4..8, little-endian u32).
    data[4:8] = struct.pack("<I", 99)
    path.write_bytes(bytes(data))
    with pytest.raises(ValueError, match="version"):
        read_trace(path)


def test_binary_truncation_detected(tmp_path):
    tr = sample_trace()
    path = write_trace(tr, tmp_path / "t.bin")
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    with pytest.raises(ValueError, match="truncated"):
        read_trace(path)


def test_streaming_writer_matches_in_memory(tmp_path):
    from repro.pcxx import Collection, TracingRuntime, make_distribution
    from repro.trace.io import TraceFileWriter
    from repro.trace.trace import TraceMeta

    n = 4
    coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=16)
    for i in range(n):
        coll.poke(i, i)

    def body(ctx):
        yield from ctx.compute_us(10.0)
        yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
        yield from ctx.barrier()

    path = tmp_path / "stream.jsonl"
    meta = TraceMeta(program="s", n_threads=n)
    with TraceFileWriter(path, meta) as writer:
        rt = TracingRuntime(n, "s", sink=writer.append)
        trace = rt.run(body)
        assert writer.count == len(trace)
    back = read_trace(path)
    assert back.events == trace.events


def test_streaming_writer_rejects_binary(tmp_path):
    from repro.trace.io import TraceFileWriter
    from repro.trace.trace import TraceMeta

    with pytest.raises(ValueError, match="jsonl"):
        TraceFileWriter(tmp_path / "t.bin", TraceMeta(n_threads=1))


def test_streaming_writer_closed(tmp_path):
    from repro.trace.io import TraceFileWriter
    from repro.trace.events import EventKind, TraceEvent
    from repro.trace.trace import TraceMeta

    w = TraceFileWriter(tmp_path / "t.jsonl", TraceMeta(n_threads=1))
    w.close()
    w.close()  # idempotent
    with pytest.raises(ValueError, match="closed"):
        w.append(TraceEvent(0.0, 0, EventKind.THREAD_BEGIN))


events = st.lists(
    st.builds(
        TraceEvent,
        time=st.floats(min_value=0, max_value=1e7, allow_nan=False),
        thread=st.integers(0, 7),
        kind=st.sampled_from(list(EventKind)),
        barrier_id=st.integers(-1, 100),
        owner=st.integers(-1, 7),
        nbytes=st.integers(0, 1 << 20),
        collection=st.sampled_from(["", "a", "grid", "équations"]),
        tag=st.sampled_from(["", "m1"]),
    ),
    max_size=50,
)


@settings(max_examples=30, deadline=None)
@given(events=events, suffix=st.sampled_from([".jsonl", ".bin"]))
def test_roundtrip_property(tmp_path_factory, events, suffix):
    tmp = tmp_path_factory.mktemp("traces")
    tr = Trace(TraceMeta(program="p", n_threads=8), events)
    back = read_trace(write_trace(tr, tmp / f"t{suffix}"))
    assert back.events == tr.events
