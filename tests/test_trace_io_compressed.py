"""Compressed trace I/O: transparent .gz/.bz2/.xz for both formats."""

import bz2
import gzip
import lzma

import pytest

from repro.trace.io import (
    TraceFileWriter,
    iter_trace_events,
    read_trace,
    read_trace_meta,
    stream_trace,
    streaming_digest,
    trace_format,
    write_trace,
)
from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import Trace, TraceMeta


def sample_trace():
    return Trace(
        TraceMeta(program="demo", n_threads=2, size_mode="actual", problem={"k": 1}),
        [
            TraceEvent(0.0, 0, EventKind.THREAD_BEGIN),
            TraceEvent(1.5, 0, EventKind.REMOTE_READ, owner=1, nbytes=128, collection="grid"),
            TraceEvent(2.0, 0, EventKind.BARRIER_ENTER, barrier_id=0),
            TraceEvent(2.5, 1, EventKind.MARK, tag="phase-1"),
            TraceEvent(3.0, 0, EventKind.THREAD_END),
        ],
    )


FORMATS = (".jsonl", ".bin")
COMPRESSIONS = (".gz", ".bz2", ".xz")


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("comp", COMPRESSIONS)
def test_compressed_roundtrip_digest_equality(tmp_path, fmt, comp):
    tr = sample_trace()
    plain = write_trace(tr, tmp_path / f"t{fmt}")
    packed = write_trace(tr, tmp_path / f"t{fmt}{comp}")
    assert read_trace(plain).events == read_trace(packed).events
    assert read_trace(packed).digest() == tr.digest()
    # The compressed file actually is compressed (format-specific magic).
    magic = {".gz": b"\x1f\x8b", ".bz2": b"BZh", ".xz": b"\xfd7zXZ"}[comp]
    assert packed.read_bytes()[: len(magic)] == magic


@pytest.mark.parametrize("comp", COMPRESSIONS)
def test_streaming_digest_equals_uncompressed(tmp_path, comp):
    tr = sample_trace()
    plain = write_trace(tr, tmp_path / "t.jsonl")
    packed = write_trace(tr, tmp_path / f"t.jsonl{comp}")
    assert streaming_digest(packed) == tr.digest()
    assert streaming_digest(plain) == tr.digest()


def test_stream_trace_is_lazy(tmp_path):
    tr = sample_trace()
    path = write_trace(tr, tmp_path / "t.jsonl.gz")
    meta, events = stream_trace(path)
    assert meta.program == "demo"
    assert list(events) == tr.events
    assert read_trace_meta(path).n_threads == 2
    assert list(iter_trace_events(path)) == tr.events


@pytest.mark.parametrize(
    "name", ["t.JSONL.GZ", "t.Jsonl.Gz", "t.BIN.XZ", "t.jsonl.BZ2"]
)
def test_compression_suffix_case_insensitive(tmp_path, name):
    tr = sample_trace()
    path = write_trace(tr, tmp_path / name)
    assert read_trace(path).events == tr.events


def test_unrecognized_suffix_chain_named(tmp_path):
    """The error names the whole suffix chain it could not place."""
    with pytest.raises(ValueError, match=r"\.zip"):
        write_trace(sample_trace(), tmp_path / "t.jsonl.zip")
    with pytest.raises(ValueError, match=r"\.csv\.gz"):
        write_trace(sample_trace(), tmp_path / "t.csv.gz")
    with pytest.raises(ValueError, match=r"\.gz"):
        read_trace(tmp_path / "t.gz")  # compression with no format under it


def test_trace_format_dispatch():
    from pathlib import Path

    assert trace_format(Path("a.jsonl")) == (".jsonl", None)
    assert trace_format(Path("a.bin.gz")) == (".bin", ".gz")
    assert trace_format(Path("a.JSONL.XZ")) == (".jsonl", ".xz")


def test_streaming_writer_compressed(tmp_path):
    tr = sample_trace()
    path = tmp_path / "s.jsonl.gz"
    with TraceFileWriter(path, tr.meta) as w:
        for ev in tr.events:
            w.append(ev)
    assert w.count == len(tr.events)
    back = read_trace(path)
    assert back.events == tr.events
    assert back.digest() == tr.digest()


def test_gzip_output_byte_deterministic(tmp_path):
    """gzip embeds an mtime by default; ours must not (byte-stable
    artifacts are part of the determinism contract)."""
    import time

    tr = sample_trace()
    a = write_trace(tr, tmp_path / "a.jsonl.gz")
    time.sleep(1.1)  # cross an mtime-second boundary
    b = write_trace(tr, tmp_path / "b.jsonl.gz")
    assert a.read_bytes() == b.read_bytes()

    c = tmp_path / "c.jsonl.gz"
    d = tmp_path / "d.jsonl.gz"
    with TraceFileWriter(c, tr.meta) as w:
        for ev in tr.events:
            w.append(ev)
    time.sleep(1.1)
    with TraceFileWriter(d, tr.meta) as w:
        for ev in tr.events:
            w.append(ev)
    assert c.read_bytes() == d.read_bytes()


def test_corrupt_compressed_stream(tmp_path):
    path = tmp_path / "t.jsonl.gz"
    path.write_bytes(b"\x1f\x8b" + b"garbage-not-a-gzip-stream")
    with pytest.raises(ValueError):
        read_trace(path)


@pytest.mark.parametrize("comp,mod", [(".gz", gzip), (".bz2", bz2), (".xz", lzma)])
def test_foreign_compressed_file_reads(tmp_path, comp, mod):
    """A file compressed by the stdlib tools directly (not our writer)
    still reads — we dispatch on suffix, not on who wrote it."""
    tr = sample_trace()
    plain = write_trace(tr, tmp_path / "t.jsonl")
    packed = tmp_path / f"t2.jsonl{comp}"
    packed.write_bytes(mod.compress(plain.read_bytes()))
    assert read_trace(packed).events == tr.events
