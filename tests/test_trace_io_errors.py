"""Malformed-trace diagnostics: file, line number, offending text."""

import struct

import pytest

from repro.trace.events import EventKind, TraceEvent
from repro.trace.io import TraceReadError, read_trace, write_trace
from repro.trace.trace import Trace, TraceMeta


def sample_trace(n=2):
    return Trace(
        TraceMeta(program="demo", n_threads=n),
        [
            TraceEvent(0.0, 0, EventKind.THREAD_BEGIN),
            TraceEvent(1.5, 0, EventKind.REMOTE_READ, owner=1, nbytes=128),
            TraceEvent(3.0, 0, EventKind.THREAD_END),
        ],
    )


# -- JSONL ------------------------------------------------------------------


def test_truncated_jsonl_line_names_file_and_line(tmp_path):
    path = write_trace(sample_trace(), tmp_path / "t.jsonl")
    text = path.read_text()
    path.write_text(text[: len(text) - 20])  # cut mid-final-line
    with pytest.raises(TraceReadError) as exc_info:
        read_trace(path)
    msg = str(exc_info.value)
    assert "t.jsonl" in msg
    assert ":4:" in msg  # header + 3 events; the 4th line is broken
    assert "malformed event line" in msg


def test_garbage_event_line_includes_snippet(tmp_path):
    path = write_trace(sample_trace(), tmp_path / "t.jsonl")
    lines = path.read_text().splitlines()
    lines[2] = "not json at all"
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(TraceReadError, match=r"t\.jsonl:3: .*'not json at all'"):
        read_trace(path)


def test_valid_json_but_bad_event_line(tmp_path):
    path = write_trace(sample_trace(), tmp_path / "t.jsonl")
    lines = path.read_text().splitlines()
    lines[1] = '{"totally": "wrong"}'
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(TraceReadError, match=r"t\.jsonl:2: bad trace event"):
        read_trace(path)


def test_empty_file(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("")
    with pytest.raises(TraceReadError, match=r"t\.jsonl:1: empty file"):
        read_trace(path)


def test_missing_meta_header(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"nope": 1}\n')
    with pytest.raises(TraceReadError, match="missing metadata header"):
        read_trace(path)


def test_malformed_header(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("{broken\n")
    with pytest.raises(TraceReadError, match=r"t\.jsonl:1: malformed header"):
        read_trace(path)


# -- binary -----------------------------------------------------------------


def test_binary_bad_magic(tmp_path):
    path = tmp_path / "t.bin"
    path.write_bytes(b"NOPE" + b"\x00" * 16)
    with pytest.raises(TraceReadError, match="magic"):
        read_trace(path)


def test_binary_truncated_records(tmp_path):
    path = write_trace(sample_trace(), tmp_path / "t.bin")
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    with pytest.raises(TraceReadError, match="truncated trace"):
        read_trace(path)


def test_binary_truncated_header(tmp_path):
    path = tmp_path / "t.bin"
    path.write_bytes(b"XTRP" + b"\x01\x00")
    with pytest.raises(TraceReadError, match="incomplete header"):
        read_trace(path)


def test_binary_unsupported_version(tmp_path):
    path = write_trace(sample_trace(), tmp_path / "t.bin")
    data = bytearray(path.read_bytes())
    data[4:8] = struct.pack("<I", 99)
    path.write_bytes(bytes(data))
    with pytest.raises(TraceReadError, match="version 99"):
        read_trace(path)


def test_trace_read_error_is_value_error(tmp_path):
    """Callers that caught ValueError before keep working."""
    path = tmp_path / "t.jsonl"
    path.write_text("")
    with pytest.raises(ValueError):
        read_trace(path)
