"""Merging per-thread traces and per-thread statistics."""

import pytest

from repro.core import presets
from repro.core.pipeline import measure_and_extrapolate
from repro.pcxx import Collection, make_distribution
from repro.trace.stats import compute_stats_per_thread
from repro.trace.trace import Trace, TraceMeta
from repro.trace.validate import validate_trace


def outcome(n=4):
    def program(rt):
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            yield from ctx.compute_us(100.0)
            if n > 1:
                yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
            yield from ctx.barrier()

        return body

    return measure_and_extrapolate(program, n, presets.cm5(), name="m")


def test_split_merge_roundtrip():
    o = outcome()
    trace = o.trace
    merged = Trace.from_thread_traces(trace.meta, trace.split_by_thread())
    # Same multiset of events; order may legally differ at equal times.
    assert sorted(merged.events, key=repr) == sorted(trace.events, key=repr)
    validate_trace(merged)


def test_merge_extrapolated_traces_validates():
    o = outcome()
    merged = Trace.from_thread_traces(
        TraceMeta(n_threads=4, program="m"), o.result.threads
    )
    validate_trace(merged)
    assert merged.duration == pytest.approx(o.predicted_time, abs=1e-6)


def test_merge_thread_count_mismatch():
    o = outcome()
    with pytest.raises(ValueError, match="threads"):
        Trace.from_thread_traces(TraceMeta(n_threads=7), o.result.threads)


def test_compute_stats_per_thread():
    o = outcome()
    st = compute_stats_per_thread(o.result.threads)
    assert st.n_threads == 4
    assert st.n_remote_reads == 4
    assert st.n_barriers == 1


def test_network_message_log():
    from repro.core.pipeline import measure
    from repro.core.translation import translate
    from repro.sim.network import Network
    from repro.sim.simulator import Simulator

    def program(rt):
        n = rt.n_threads
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
            yield from ctx.barrier()

        return body

    tp = translate(measure(program, 4, name="m"))
    sim = Simulator(
        tp,
        presets.cm5(),
        network_factory=lambda env, n, p: Network(env, n, p, record_messages=True),
    )
    res = sim.run()
    log = sim.network.message_log
    assert len(log) == res.network.messages
    # Entries are (inject, deliver, kind, src, dst, nbytes), time-ordered.
    injects = [row[0] for row in log]
    assert injects == sorted(injects)
    assert all(row[1] >= row[0] for row in log)
    kinds = {row[2] for row in log}
    assert "request" in kinds and "reply" in kinds
