"""Trace statistics (the §4.1 diagnosis numbers)."""

import pytest

from repro.trace.events import EventKind, TraceEvent
from repro.trace.stats import compute_stats
from repro.trace.trace import Trace, TraceMeta

E = EventKind


def test_stats_counts():
    tr = Trace(
        TraceMeta(program="s", n_threads=2),
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(0.0, 1, E.THREAD_BEGIN),
            TraceEvent(5.0, 0, E.REMOTE_READ, owner=1, nbytes=2, collection="grid"),
            TraceEvent(6.0, 0, E.REMOTE_READ, owner=1, nbytes=128, collection="grid"),
            TraceEvent(7.0, 1, E.REMOTE_WRITE, owner=0, nbytes=64, collection="aux"),
            TraceEvent(8.0, 0, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(9.0, 1, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(9.0, 0, E.BARRIER_EXIT, barrier_id=0),
            TraceEvent(9.0, 1, E.BARRIER_EXIT, barrier_id=0),
            TraceEvent(10.0, 0, E.THREAD_END),
            TraceEvent(10.0, 1, E.THREAD_END),
        ],
    )
    st = compute_stats(tr)
    assert st.n_threads == 2
    assert st.n_events == 11
    assert st.n_barriers == 1
    assert st.n_remote_reads == 2
    assert st.n_remote_writes == 1
    assert st.remote_bytes_total == 194
    assert st.remote_bytes_min == 2
    assert st.remote_bytes_max == 128
    assert st.remote_by_collection == {"grid": 2, "aux": 1}
    assert st.remote_reads_per_thread == [2, 0]
    assert st.mean_remote_bytes == pytest.approx(194 / 3)
    assert "1 barriers" in st.summary()


def test_compute_time_excludes_barrier_wait():
    tr = Trace(
        TraceMeta(program="s", n_threads=1),
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(10.0, 0, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(90.0, 0, E.BARRIER_EXIT, barrier_id=0),
            TraceEvent(95.0, 0, E.THREAD_END),
        ],
    )
    st = compute_stats(tr)
    assert st.compute_time_per_thread == [15.0]
    assert st.total_compute_time == 15.0


def test_empty_trace():
    st = compute_stats(Trace(TraceMeta(n_threads=3)))
    assert st.n_events == 0
    assert st.mean_remote_bytes == 0.0
