"""Trace containers: split, durations, compute deltas."""

import pytest

from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import ThreadTrace, Trace, TraceMeta


def _mk(events, n=2):
    return Trace(TraceMeta(program="t", n_threads=n), events)


def test_split_by_thread():
    tr = _mk(
        [
            TraceEvent(0.0, 0, EventKind.THREAD_BEGIN),
            TraceEvent(1.0, 1, EventKind.THREAD_BEGIN),
            TraceEvent(2.0, 0, EventKind.THREAD_END),
            TraceEvent(3.0, 1, EventKind.THREAD_END),
        ]
    )
    parts = tr.split_by_thread()
    assert [len(p) for p in parts] == [2, 2]
    assert parts[0].thread == 0
    assert all(e.thread == 1 for e in parts[1].events)


def test_split_rejects_out_of_range_thread():
    tr = _mk([TraceEvent(0.0, 5, EventKind.THREAD_BEGIN)])
    with pytest.raises(ValueError):
        tr.split_by_thread()


def test_duration_and_barrier_count():
    tr = _mk(
        [
            TraceEvent(1.0, 0, EventKind.THREAD_BEGIN),
            TraceEvent(2.0, 0, EventKind.BARRIER_ENTER, barrier_id=0),
            TraceEvent(3.0, 0, EventKind.BARRIER_EXIT, barrier_id=0),
            TraceEvent(9.0, 0, EventKind.THREAD_END),
        ],
        n=1,
    )
    assert tr.duration == 8.0
    assert tr.barrier_count() == 1


def test_empty_trace():
    tr = _mk([], n=1)
    assert tr.duration == 0.0
    assert tr.barrier_count() == 0


def test_thread_trace_compute_deltas_exclude_barrier_wait():
    tt = ThreadTrace(
        0,
        [
            TraceEvent(0.0, 0, EventKind.THREAD_BEGIN),
            TraceEvent(10.0, 0, EventKind.BARRIER_ENTER, barrier_id=0),
            TraceEvent(50.0, 0, EventKind.BARRIER_EXIT, barrier_id=0),
            TraceEvent(57.0, 0, EventKind.THREAD_END),
        ],
    )
    # 0->10 compute, 10->50 barrier wait (excluded), 50->57 compute.
    assert tt.compute_deltas() == [10.0, 0.0, 7.0]
    assert tt.duration == 57.0


def test_thread_trace_times():
    tt = ThreadTrace(3, [])
    assert tt.start_time == 0.0 and tt.end_time == 0.0
    tt2 = ThreadTrace(0, [TraceEvent(4.0, 0, EventKind.THREAD_BEGIN)])
    assert tt2.start_time == 4.0 == tt2.end_time


def test_meta_roundtrip():
    meta = TraceMeta(
        program="grid",
        n_threads=8,
        trace_mflops=1.136,
        size_mode="actual",
        problem={"m": 16},
    )
    again = TraceMeta.from_dict(meta.to_dict())
    assert again == meta
