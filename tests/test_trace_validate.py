"""Structural validation of traces: each invariant has a violating case."""

import pytest

from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import Trace, TraceMeta
from repro.trace.validate import TraceValidationError, validate_trace

E = EventKind


def mk(events, n=2):
    return Trace(TraceMeta(program="t", n_threads=n), events)


def good_trace():
    return mk(
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(1.0, 0, E.REMOTE_READ, owner=1, nbytes=8),
            TraceEvent(2.0, 0, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(3.0, 1, E.THREAD_BEGIN),
            TraceEvent(4.0, 1, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(4.0, 1, E.BARRIER_EXIT, barrier_id=0),
            TraceEvent(4.0, 0, E.BARRIER_EXIT, barrier_id=0),
            TraceEvent(5.0, 0, E.THREAD_END),
            TraceEvent(5.0, 1, E.THREAD_END),
        ]
    )


def test_good_trace_passes():
    validate_trace(good_trace())


def test_bad_n_threads():
    with pytest.raises(TraceValidationError, match="n_threads"):
        validate_trace(mk([], n=0))


def test_thread_out_of_range():
    tr = mk([TraceEvent(0.0, 9, E.THREAD_BEGIN)])
    with pytest.raises(TraceValidationError, match="out of range"):
        validate_trace(tr)


def test_time_backwards():
    tr = mk(
        [
            TraceEvent(5.0, 0, E.THREAD_BEGIN),
            TraceEvent(3.0, 0, E.THREAD_END),
        ],
        n=1,
    )
    with pytest.raises(TraceValidationError, match="backwards"):
        validate_trace(tr)


def test_event_before_begin():
    tr = mk([TraceEvent(0.0, 0, E.MARK, tag="x")], n=1)
    with pytest.raises(TraceValidationError, match="before THREAD_BEGIN"):
        validate_trace(tr)


def test_event_after_end():
    tr = mk(
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(1.0, 0, E.THREAD_END),
            TraceEvent(2.0, 0, E.MARK, tag="x"),
        ],
        n=1,
    )
    with pytest.raises(TraceValidationError, match="after THREAD_END"):
        validate_trace(tr)


def test_duplicate_begin():
    tr = mk(
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(1.0, 0, E.THREAD_BEGIN),
        ],
        n=1,
    )
    with pytest.raises(TraceValidationError, match="duplicate"):
        validate_trace(tr)


def test_missing_end():
    tr = mk([TraceEvent(0.0, 0, E.THREAD_BEGIN)], n=1)
    with pytest.raises(TraceValidationError, match="missing THREAD_END"):
        validate_trace(tr)


def test_nested_barrier():
    tr = mk(
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(1.0, 0, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(2.0, 0, E.BARRIER_ENTER, barrier_id=1),
        ],
        n=1,
    )
    with pytest.raises(TraceValidationError, match="nested"):
        validate_trace(tr)


def test_exit_wrong_barrier():
    tr = mk(
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(1.0, 0, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(2.0, 0, E.BARRIER_EXIT, barrier_id=5),
        ],
        n=1,
    )
    with pytest.raises(TraceValidationError, match="exit from barrier"):
        validate_trace(tr)


def test_end_inside_barrier():
    tr = mk(
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(1.0, 0, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(2.0, 0, E.THREAD_END),
        ],
        n=1,
    )
    with pytest.raises(TraceValidationError, match="inside barrier"):
        validate_trace(tr)


def test_remote_self_access():
    tr = mk(
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(1.0, 0, E.REMOTE_READ, owner=0, nbytes=8),
        ],
        n=1,
    )
    with pytest.raises(TraceValidationError, match="own element"):
        validate_trace(tr)


def test_remote_bad_size():
    tr = mk(
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(1.0, 0, E.REMOTE_READ, owner=1, nbytes=0),
        ]
    )
    with pytest.raises(TraceValidationError, match="size"):
        validate_trace(tr)


def test_partial_barrier_participation():
    tr = mk(
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(1.0, 0, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(2.0, 0, E.BARRIER_EXIT, barrier_id=0),
            TraceEvent(3.0, 0, E.THREAD_END),
            TraceEvent(0.0, 1, E.THREAD_BEGIN),
            TraceEvent(1.0, 1, E.THREAD_END),
        ]
    )
    with pytest.raises(TraceValidationError, match="expected all"):
        validate_trace(tr)
    # The check is optional for partial-barrier languages.
    validate_trace(tr, require_global_barriers=False)


def test_runtime_traces_validate():
    """Traces produced by the tracing runtime are well-formed by construction."""
    from repro.pcxx import Collection, TracingRuntime, make_distribution

    rt = TracingRuntime(3, "v")
    coll = Collection("c", make_distribution(3, 3, "cyclic"), element_nbytes=16)
    for i in range(3):
        coll.poke(i, i)

    def body(ctx):
        yield from ctx.compute(100)
        yield from ctx.get(coll, (ctx.tid + 1) % 3)
        yield from ctx.barrier()
        yield from ctx.mark("done")

    validate_trace(rt.run(body))
