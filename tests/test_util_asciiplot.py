"""ASCII plots: structural checks only (they're a reporting aid)."""

import pytest

from repro.util.asciiplot import ascii_series_plot


def test_plot_contains_marks_and_legend():
    out = ascii_series_plot(
        {"up": [(1, 1.0), (2, 2.0)], "down": [(1, 2.0), (2, 1.0)]},
        width=20,
        height=5,
    )
    assert "o = up" in out
    assert "x = down" in out
    assert "o" in out.splitlines()[1]


def test_logx():
    out = ascii_series_plot(
        {"s": [(1, 1.0), (32, 5.0)]}, logx=True, width=16, height=4
    )
    assert "1 .. 32" in out


def test_logx_rejects_nonpositive():
    with pytest.raises(ValueError):
        ascii_series_plot({"s": [(0, 1.0)]}, logx=True)


def test_empty_rejected():
    with pytest.raises(ValueError):
        ascii_series_plot({})
    with pytest.raises(ValueError):
        ascii_series_plot({"s": []})


def test_constant_series():
    # Degenerate spans must not divide by zero.
    out = ascii_series_plot({"s": [(1, 3.0), (2, 3.0)]}, width=8, height=3)
    assert "s" in out
