"""Crash-safe atomic file writes."""

import os

import pytest

from repro.util.atomic import atomic_write, atomic_write_bytes, atomic_write_text


def test_atomic_write_text_creates_and_replaces(tmp_path):
    path = tmp_path / "out.txt"
    assert atomic_write_text(path, "one\n") == path
    assert path.read_text() == "one\n"
    atomic_write_text(path, "two\n")
    assert path.read_text() == "two\n"


def test_atomic_write_bytes(tmp_path):
    path = tmp_path / "out.bin"
    atomic_write_bytes(path, b"\x00\x01")
    assert path.read_bytes() == b"\x00\x01"


def test_failure_leaves_original_intact_and_no_temp_files(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("original")
    with pytest.raises(RuntimeError, match="boom"):
        with atomic_write(path) as fh:
            fh.write("partial garbage")
            raise RuntimeError("boom")
    assert path.read_text() == "original"
    assert os.listdir(tmp_path) == ["out.txt"], "temp file must be cleaned up"


def test_no_temp_files_after_success(tmp_path):
    atomic_write_text(tmp_path / "a.txt", "x")
    assert os.listdir(tmp_path) == ["a.txt"]


def test_write_only_modes(tmp_path):
    for mode in ("r", "a", "r+"):
        with pytest.raises(ValueError, match="write-only"):
            with atomic_write(tmp_path / "x", mode=mode):
                pass  # pragma: no cover


def test_trace_writes_are_atomic(tmp_path):
    """write_trace must not leave droppings beside the artifact."""
    from repro.trace.events import EventKind, TraceEvent
    from repro.trace.io import write_trace
    from repro.trace.trace import Trace, TraceMeta

    tr = Trace(
        TraceMeta(program="t", n_threads=1),
        [
            TraceEvent(0.0, 0, EventKind.THREAD_BEGIN),
            TraceEvent(1.0, 0, EventKind.THREAD_END),
        ],
    )
    for suffix in (".jsonl", ".bin"):
        write_trace(tr, tmp_path / f"t{suffix}")
    assert sorted(os.listdir(tmp_path)) == ["t.bin", "t.jsonl"]


def test_bench_baseline_write_is_atomic(tmp_path):
    from repro.perf.bench import load_baseline, write_baseline

    path = tmp_path / "BENCH_engine.json"
    write_baseline({"schema": 1, "workloads": {}}, path)
    assert load_baseline(path)["schema"] == 1
    assert os.listdir(tmp_path) == ["BENCH_engine.json"]


def test_keyboard_interrupt_leaves_original_and_no_temp(tmp_path):
    # Ctrl-C mid-write (e.g. during a sweep artifact dump) must neither
    # corrupt the destination nor leave a temp file behind.
    path = tmp_path / "out.txt"
    path.write_text("original")
    with pytest.raises(KeyboardInterrupt):
        with atomic_write(path) as fh:
            fh.write("partial")
            raise KeyboardInterrupt
    assert path.read_text() == "original"
    assert os.listdir(tmp_path) == ["out.txt"]
