"""Structured logging helpers."""

import io
import logging

from repro.util.log import (
    ROOT_LOGGER,
    get_logger,
    level_from_verbosity,
    setup_logging,
)


def _fresh_root():
    root = logging.getLogger(ROOT_LOGGER)
    for h in list(root.handlers):
        root.removeHandler(h)
    root.setLevel(logging.NOTSET)
    root.propagate = True
    return root


def test_get_logger_names():
    assert get_logger().name == ROOT_LOGGER
    assert get_logger("cli").name == "repro.cli"
    assert get_logger("repro.sim").name == "repro.sim"


def test_level_from_verbosity():
    assert level_from_verbosity(0) == logging.WARNING
    assert level_from_verbosity(1) == logging.INFO
    assert level_from_verbosity(2) == logging.DEBUG
    assert level_from_verbosity(5) == logging.DEBUG


def test_setup_logging_writes_to_stream():
    _fresh_root()
    stream = io.StringIO()
    setup_logging("info", stream=stream, force=True)
    log = get_logger("t")
    log.info("hello %d", 7)
    log.debug("hidden")
    out = stream.getvalue()
    assert "INFO repro.t: hello 7" in out
    assert "hidden" not in out
    _fresh_root()


def test_setup_logging_idempotent_unless_forced():
    _fresh_root()
    first = io.StringIO()
    second = io.StringIO()
    setup_logging(logging.WARNING, stream=first, force=True)
    # Second call without force keeps the existing handler (only the
    # level changes).
    setup_logging(logging.DEBUG, stream=second)
    root = logging.getLogger(ROOT_LOGGER)
    assert len(root.handlers) == 1
    assert root.level == logging.DEBUG
    get_logger("t").warning("once")
    assert "once" in first.getvalue()
    assert second.getvalue() == ""
    # force=True swaps the sink.
    setup_logging("warning", stream=second, force=True)
    assert len(root.handlers) == 1
    get_logger("t").warning("twice")
    assert "twice" in second.getvalue()
    assert "twice" not in first.getvalue()
    _fresh_root()


def test_setup_logging_rejects_bad_level():
    import pytest

    with pytest.raises(ValueError, match="unknown log level"):
        setup_logging("loud")


def test_cli_verbose_flag_routes_status_to_stderr(tmp_path, capsys):
    from repro.cli import main

    # Start from an unconfigured hierarchy so the CLI's setup_logging
    # binds its handler to the capsys-captured stderr.
    _fresh_root()
    path = tmp_path / "t.jsonl"
    assert main(["-v", "trace", "embar", "-n", "2", "-o", str(path)]) == 0
    captured = capsys.readouterr()
    # Status chatter goes to the log on stderr; artifact line stays on stdout.
    assert "wrote" in captured.out
    assert "INFO repro.cli" in captured.err
    _fresh_root()
