"""Deterministic RNG helpers."""

import numpy as np
import pytest

from repro.util.rng import DEFAULT_SEED, make_rng, spawn_rngs


def test_default_seed_is_deterministic():
    a = make_rng().random(8)
    b = make_rng().random(8)
    assert np.array_equal(a, b)


def test_explicit_seed():
    assert np.array_equal(make_rng(7).random(4), make_rng(7).random(4))
    assert not np.array_equal(make_rng(7).random(4), make_rng(8).random(4))


def test_none_maps_to_default_seed():
    assert np.array_equal(make_rng(None).random(4), make_rng(DEFAULT_SEED).random(4))


def test_spawn_independent_streams():
    streams = spawn_rngs(123, 4)
    draws = [s.random(16) for s in streams]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(draws[i], draws[j])
    # Reproducible.
    again = [s.random(16) for s in spawn_rngs(123, 4)]
    for a, b in zip(draws, again):
        assert np.array_equal(a, b)


def test_spawn_zero():
    assert list(spawn_rngs(1, 0)) == []


def test_spawn_negative_rejected():
    with pytest.raises(ValueError):
        spawn_rngs(1, -1)
