"""ASCII table formatting."""

import pytest

from repro.util.tables import format_table


def test_basic_alignment():
    out = format_table(["P", "time"], [[1, 2.0], [32, 1.25]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)
    assert "32" in lines[3]


def test_title():
    out = format_table(["a"], [[1]], title="hello")
    assert out.splitlines()[0] == "hello"


def test_float_format():
    out = format_table(["x"], [[1.23456]], float_fmt=".1f")
    assert "1.2" in out
    assert "1.23" not in out


def test_bools_and_strings():
    out = format_table(["a", "b"], [[True, "text"]])
    assert "True" in out and "text" in out


def test_ragged_rows_rejected():
    with pytest.raises(ValueError, match="row 0"):
        format_table(["a", "b"], [[1]])


def test_empty_rows():
    out = format_table(["a"], [])
    assert len(out.splitlines()) == 2
