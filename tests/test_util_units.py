"""Unit conversions: the paper's bandwidth/time numbers must round-trip."""

import math

import pytest

from repro.util.units import (
    bytes_per_us_to_mbytes_per_s,
    mbytes_per_s_to_us_per_byte,
    mflops_to_us_per_flop,
    us_per_byte_to_mbytes_per_s,
    us_to_ms,
    us_to_s,
)


def test_paper_bandwidths():
    # The parameter-set bandwidths quoted in §4.1 and Table 3.
    assert mbytes_per_s_to_us_per_byte(20.0) == pytest.approx(0.05)
    assert mbytes_per_s_to_us_per_byte(200.0) == pytest.approx(0.005)
    assert mbytes_per_s_to_us_per_byte(5.0) == pytest.approx(0.2)
    assert mbytes_per_s_to_us_per_byte(8.5) == pytest.approx(0.118, abs=1e-3)


def test_roundtrip():
    for mb in (1.0, 8.5, 20.0, 200.0, 1234.5):
        assert us_per_byte_to_mbytes_per_s(
            mbytes_per_s_to_us_per_byte(mb)
        ) == pytest.approx(mb)


def test_bytes_per_us():
    assert bytes_per_us_to_mbytes_per_s(1.0) == pytest.approx(1.0)
    assert bytes_per_us_to_mbytes_per_s(0.05) == pytest.approx(0.05)


def test_mflops():
    # Sun4: 1.1360 MFLOPS -> ~0.88 us per flop.
    assert mflops_to_us_per_flop(1.1360) == pytest.approx(1 / 1.1360)
    assert mflops_to_us_per_flop(1.0) == 1.0


def test_time_conversions():
    assert us_to_s(1_000_000.0) == 1.0
    assert us_to_ms(1500.0) == 1.5


@pytest.mark.parametrize("fn", [mbytes_per_s_to_us_per_byte, us_per_byte_to_mbytes_per_s, mflops_to_us_per_flop])
@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_rejects_nonpositive(fn, bad):
    with pytest.raises(ValueError):
        fn(bad)
